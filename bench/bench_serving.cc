// Online serving bench: trains a bench-scale RRRE model, checkpoints it,
// starts an in-process rrre_served Server on an ephemeral port, and drives it
// with the loadgen client. Reports sustained QPS, round-trip latency
// percentiles and the micro-batcher's realized batch-size distribution, and
// writes the numbers to BENCH_serving.json for tracking across commits.
//
// Runs the identical load twice — once with the metrics registry enabled
// (the production default) and once with it disabled — and reports the QPS
// overhead the instrumentation costs, so the "<3% regression" budget is
// checked on every bench run rather than assumed.
//
// Two further legs measure store-backed serving (core/tower_store.h):
//
//  * same checkpoint, same load, served from a materialized tower store —
//    reported as `store_speedup` (store QPS / live-tower QPS);
//  * a catalog --store_mult (default 100) times larger, store-backed — the
//    scale a live-tower server cannot reach. The leg's p99 should be no
//    worse than live-tower p99 at 1x: the store hot path is O(dim) per pair
//    regardless of catalog size. Only the corpus grows; the prediction-head
//    dimensions stay identical so latencies compare like for like.
//
// A final routed leg drives the identical load through the rrre_routed
// sharding proxy in front of 1, 2 and 4 in-process shards: the 1-shard leg
// measures the pure proxy overhead against direct serving (one extra hop,
// byte-identical responses), the wider fleets how that overhead behaves as
// the consistent-hash fan-out spreads users.
//
//   bench_serving [--scale=0.15] [--connections=8] [--requests=5000]
//                 [--qps=0] [--max_batch=64] [--max_delay_us=1000]
//                 [--store_mult=100] [--routed_shards=4]
//                 [--out=BENCH_serving.json]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "core/tower_store.h"
#include "core/trainer.h"
#include "serve/loadgen.h"
#include "serve/router.h"
#include "serve/server.h"

namespace {

std::string JsonHistogram(const rrre::common::Histogram& h) {
  return rrre::common::StrFormat(
      "{\"count\": %lld, \"mean\": %.3f, \"p50\": %.1f, \"p95\": %.1f, "
      "\"p99\": %.1f, \"min\": %.1f, \"max\": %.1f}",
      static_cast<long long>(h.count()), h.Mean(), h.Percentile(50.0),
      h.Percentile(95.0), h.Percentile(99.0), h.Min(), h.Max());
}

struct PhaseResult {
  rrre::serve::LoadGenReport report;
  rrre::serve::ServerStats stats;
  std::string metrics_text;  ///< Empty when metrics were disabled.
};

/// One full server lifecycle (start -> loadgen -> drain -> shutdown) so the
/// metrics-on and metrics-off measurements see identical conditions.
PhaseResult RunPhase(const rrre::serve::ServerOptions& server_options,
                     rrre::serve::LoadGenOptions load) {
  using namespace rrre;  // NOLINT(build/namespaces)
  auto server = serve::Server::Start(server_options);
  RRRE_CHECK_OK(server.status());
  load.port = server.value()->port();
  auto report = serve::RunLoadGen(load);
  RRRE_CHECK_OK(report.status());
  PhaseResult out;
  out.report = report.value();
  out.metrics_text = server.value()->RenderMetricsText();
  server.value()->Shutdown();
  out.stats = server.value()->stats();
  return out;
}

struct RoutedResult {
  int shards = 0;
  rrre::serve::LoadGenReport report;
  rrre::serve::RouterStats router_stats;
};

/// One routed lifecycle: N in-process shards behind a Router, the loadgen
/// pointed at the router, everything drained before the next leg.
RoutedResult RunRoutedPhase(const rrre::serve::ServerOptions& server_options,
                            rrre::serve::LoadGenOptions load, int shards) {
  using namespace rrre;  // NOLINT(build/namespaces)
  std::vector<std::unique_ptr<serve::Server>> fleet;
  for (int i = 0; i < shards; ++i) {
    auto server = serve::Server::Start(server_options);
    RRRE_CHECK_OK(server.status());
    fleet.push_back(std::move(server).ValueOrDie());
  }
  serve::RouterOptions router_options;
  for (const auto& server : fleet) {
    router_options.backends.push_back({"127.0.0.1", server->port()});
  }
  router_options.port = 0;
  auto router = serve::Router::Start(router_options);
  RRRE_CHECK_OK(router.status());
  load.port = router.value()->port();
  auto report = serve::RunLoadGen(load);
  RRRE_CHECK_OK(report.status());
  RoutedResult out;
  out.shards = shards;
  out.report = report.value();
  router.value()->Shutdown();
  out.router_stats = router.value()->stats();
  for (auto& server : fleet) server->Shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.15);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddInt("connections", 8, "concurrent loadgen connections");
  flags.AddInt("requests", 5000, "total requests across all connections");
  flags.AddDouble("qps", 0.0, "target aggregate rate (0 = closed-loop max)");
  flags.AddInt("max_batch", 64, "server: max expanded pairs per batch");
  flags.AddInt("max_delay_us", 1000, "server: batching linger");
  flags.AddInt("queue_cap", 1024, "server: admission queue bound");
  flags.AddInt("store_mult", 100,
               "catalog multiplier for the big store-backed leg (0 = skip)");
  flags.AddInt("routed_shards", 4,
               "largest rrre_routed fleet; routed legs run at 1/2/4 shards "
               "capped here (0 = skip)");
  flags.AddString("out", "BENCH_serving.json", "JSON results path");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  auto bundle = bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                                   opts.base_seed);
  const core::RrreConfig config =
      bench::DefaultRrreConfig(opts, opts.base_seed);
  std::printf("training on %ld reviews...\n",
              static_cast<long>(bundle.train.size()));
  core::RrreTrainer trainer(config);
  trainer.Fit(bundle.train);
  const std::string prefix = "/tmp/rrre_bench_serving_ckpt";
  RRRE_CHECK_OK(trainer.Save(prefix));

  serve::ServerOptions server_options;
  server_options.config = config;
  server_options.model_prefix = prefix;
  server_options.port = 0;  // Ephemeral.
  server_options.batcher.max_batch = flags.GetInt("max_batch");
  server_options.batcher.max_delay_us = flags.GetInt("max_delay_us");
  server_options.batcher.queue_capacity = flags.GetInt("queue_cap");
  std::printf("serving %lld users x %lld items\n",
              static_cast<long long>(bundle.train.num_users()),
              static_cast<long long>(bundle.train.num_items()));

  serve::LoadGenOptions load;
  load.connections = flags.GetInt("connections");
  load.total_requests = flags.GetInt("requests");
  load.target_qps = flags.GetDouble("qps");
  load.seed = opts.base_seed;

  // Metrics-off first (the baseline), then the instrumented run the rest of
  // the report describes.
  server_options.enable_metrics = false;
  std::printf("phase 1/5: metrics off...\n");
  const PhaseResult off = RunPhase(server_options, load);
  server_options.enable_metrics = true;
  std::printf("phase 2/5: metrics on...\n");
  const PhaseResult on = RunPhase(server_options, load);

  // Store-backed leg: identical checkpoint and load, profiles served out of
  // the materialized tower store instead of the live towers.
  const std::string store_path = prefix + ".tower_store";
  auto built = core::BuildTowerStore(trainer, prefix, store_path);
  RRRE_CHECK_OK(built.status());
  std::printf("phase 3/5: store-backed (%.1f MiB store, built in %.3fs)...\n",
              static_cast<double>(built.value().bytes) / (1024.0 * 1024.0),
              built.value().seconds);
  server_options.store_path = store_path;
  const PhaseResult store1 = RunPhase(server_options, load);
  server_options.store_path.clear();

  const serve::LoadGenReport& r = on.report;
  const serve::ServerStats& stats = on.stats;
  const double overhead_pct =
      off.report.qps > 0.0 ? (off.report.qps - r.qps) / off.report.qps * 100.0
                           : 0.0;
  const double store_speedup = r.qps > 0.0 ? store1.report.qps / r.qps : 0.0;

  // Big-catalog leg: --store_mult times the corpus, store-backed. Parameter
  // *quality* is irrelevant for a latency bench, so training is cut to the
  // bone (one epoch, no word-vector pretraining, short histories) — but the
  // prediction-head dimensions are untouched, so the per-pair hot path is
  // exactly the 1x leg's and the p99s compare like for like.
  const int64_t store_mult = flags.GetInt("store_mult");
  const std::string big_prefix = "/tmp/rrre_bench_serving_ckpt_big";
  PhaseResult big;
  core::TowerStoreBuildStats big_store_stats;
  int64_t big_users = 0, big_items = 0;
  if (store_mult > 0) {
    auto big_bundle =
        bench::MakeDataset(flags.GetString("dataset"),
                           opts.scale * static_cast<double>(store_mult),
                           opts.base_seed + 1);
    core::RrreConfig big_config = config;
    big_config.epochs = 1;
    big_config.pretrain_word_vectors = false;
    big_config.s_u = 2;
    big_config.s_i = 2;
    big_config.max_tokens = 4;
    big_config.vocab_min_count = 64;
    big_config.batch_size = 512;
    big_users = big_bundle.train.num_users();
    big_items = big_bundle.train.num_items();
    std::printf(
        "phase 4/5: store-backed at %lldx catalog "
        "(%lld users x %lld items)...\n",
        static_cast<long long>(store_mult), static_cast<long long>(big_users),
        static_cast<long long>(big_items));
    core::RrreTrainer big_trainer(big_config);
    big_trainer.Fit(big_bundle.train);
    RRRE_CHECK_OK(big_trainer.Save(big_prefix));
    auto big_built = core::BuildTowerStore(big_trainer, big_prefix,
                                           big_prefix + ".tower_store");
    RRRE_CHECK_OK(big_built.status());
    big_store_stats = big_built.value();
    std::printf("  %lldx store: %.1f MiB, built in %.3fs\n",
                static_cast<long long>(store_mult),
                static_cast<double>(big_store_stats.bytes) / (1024.0 * 1024.0),
                big_store_stats.seconds);
    serve::ServerOptions big_options = server_options;
    big_options.config = big_config;
    big_options.model_prefix = big_prefix;
    big_options.store_path = big_prefix + ".tower_store";
    big = RunPhase(big_options, load);
  }

  // Routed legs: the same live-tower checkpoint and load, behind the
  // rrre_routed sharding proxy at growing fleet widths. The 1-shard leg
  // against `on` is the pure per-hop cost of the proxy.
  std::vector<RoutedResult> routed;
  const int routed_shards = static_cast<int>(flags.GetInt("routed_shards"));
  for (const int shards : {1, 2, 4}) {
    if (shards > routed_shards) continue;
    std::printf("phase 5/5: routed, %d shard%s...\n", shards,
                shards == 1 ? "" : "s");
    routed.push_back(RunRoutedPhase(server_options, load, shards));
  }

  std::printf("\n%lld requests over %lld connections in %.3fs -> %.1f qps\n",
              static_cast<long long>(r.sent),
              static_cast<long long>(load.connections), r.seconds, r.qps);
  std::printf("  scored=%lld overloaded=%lld errors=%lld\n",
              static_cast<long long>(r.scored),
              static_cast<long long>(r.overloaded),
              static_cast<long long>(r.errors));
  std::printf("  latency (us): %s\n", r.latency_us.Summary().c_str());
  std::printf("  batch size (pairs): %s\n",
              stats.batcher.batch_pairs.Summary().c_str());
  std::printf("  batch latency (us): %s\n",
              stats.batcher.batch_latency_us.Summary().c_str());
  std::printf("  metrics off: %.1f qps -> metrics overhead %.2f%%\n",
              off.report.qps, overhead_pct);
  std::printf("  store-backed: %.1f qps (%.2fx live), latency (us): %s\n",
              store1.report.qps, store_speedup,
              store1.report.latency_us.Summary().c_str());
  if (store_mult > 0) {
    std::printf(
        "  store-backed %lldx catalog: %.1f qps, latency (us): %s\n"
        "  %lldx store p99 %.1fus vs live 1x p99 %.1fus\n",
        static_cast<long long>(store_mult), big.report.qps,
        big.report.latency_us.Summary().c_str(),
        static_cast<long long>(store_mult),
        big.report.latency_us.Percentile(99.0), r.latency_us.Percentile(99.0));
  }
  for (const RoutedResult& leg : routed) {
    const double routed_overhead_pct =
        r.qps > 0.0 ? (r.qps - leg.report.qps) / r.qps * 100.0 : 0.0;
    std::printf(
        "  routed %d shard%s: %.1f qps (%.2f%% vs direct), "
        "latency (us): %s\n",
        leg.shards, leg.shards == 1 ? "" : "s", leg.report.qps,
        routed_overhead_pct, leg.report.latency_us.Summary().c_str());
  }

  const std::string json = common::StrFormat(
      "{\n"
      "  \"bench\": \"serving\",\n"
      "  \"dataset\": \"%s\",\n"
      "  \"scale\": %.3f,\n"
      "  \"connections\": %lld,\n"
      "  \"requests\": %lld,\n"
      "  \"target_qps\": %.1f,\n"
      "  \"max_batch\": %lld,\n"
      "  \"max_delay_us\": %lld,\n"
      "  \"seconds\": %.3f,\n"
      "  \"qps\": %.1f,\n"
      "  \"scored\": %lld,\n"
      "  \"overloaded\": %lld,\n"
      "  \"errors\": %lld,\n"
      "  \"latency_us\": %s,\n"
      "  \"batch_pairs\": %s,\n"
      "  \"batch_latency_us\": %s,\n"
      "  \"batches\": %lld,\n"
      "  \"pairs_scored\": %lld,\n"
      "  \"qps_metrics_off\": %.1f,\n"
      "  \"metrics_overhead_pct\": %.2f,\n"
      "  \"store_qps\": %.1f,\n"
      "  \"store_latency_us\": %s,\n"
      "  \"store_batch_latency_us\": %s,\n"
      "  \"store_speedup\": %.3f,\n"
      "  \"store_100x\": %s,\n"
      "  \"routed\": [%s]\n"
      "}\n",
      flags.GetString("dataset").c_str(), opts.scale,
      static_cast<long long>(load.connections),
      static_cast<long long>(load.total_requests), load.target_qps,
      static_cast<long long>(server_options.batcher.max_batch),
      static_cast<long long>(server_options.batcher.max_delay_us), r.seconds,
      r.qps, static_cast<long long>(r.scored),
      static_cast<long long>(r.overloaded),
      static_cast<long long>(r.errors), JsonHistogram(r.latency_us).c_str(),
      JsonHistogram(stats.batcher.batch_pairs).c_str(),
      JsonHistogram(stats.batcher.batch_latency_us).c_str(),
      static_cast<long long>(stats.batcher.batches),
      static_cast<long long>(stats.batcher.pairs_scored), off.report.qps,
      overhead_pct, store1.report.qps,
      JsonHistogram(store1.report.latency_us).c_str(),
      JsonHistogram(store1.stats.batcher.batch_latency_us).c_str(),
      store_speedup,
      store_mult > 0
          ? common::StrFormat(
                "{\"catalog_mult\": %lld, \"num_users\": %lld, "
                "\"num_items\": %lld, \"store_mib\": %.1f, "
                "\"build_seconds\": %.3f, \"qps\": %.1f, "
                "\"latency_us\": %s}",
                static_cast<long long>(store_mult),
                static_cast<long long>(big_users),
                static_cast<long long>(big_items),
                static_cast<double>(big_store_stats.bytes) / (1024.0 * 1024.0),
                big_store_stats.seconds, big.report.qps,
                JsonHistogram(big.report.latency_us).c_str())
                .c_str()
          : "null",
      [&] {
        std::string legs;
        for (const RoutedResult& leg : routed) {
          if (!legs.empty()) legs += ", ";
          legs += common::StrFormat(
              "{\"shards\": %d, \"qps\": %.1f, "
              "\"overhead_pct_vs_direct\": %.2f, \"latency_us\": %s, "
              "\"retries\": %lld, \"failovers\": %lld, "
              "\"upstream_errors\": %lld}",
              leg.shards, leg.report.qps,
              r.qps > 0.0 ? (r.qps - leg.report.qps) / r.qps * 100.0 : 0.0,
              JsonHistogram(leg.report.latency_us).c_str(),
              static_cast<long long>(leg.router_stats.retries),
              static_cast<long long>(leg.router_stats.failovers),
              static_cast<long long>(leg.router_stats.upstream_errors));
        }
        return legs;
      }()
          .c_str());
  RRRE_CHECK_OK(common::WriteFile(flags.GetString("out"), json));
  std::printf("\nresults written to %s\n", flags.GetString("out").c_str());

  for (const char* suffix : {".model", ".vocab", ".train.tsv", ".meta",
                             ".optimizer", ".tower_store"}) {
    std::remove((prefix + std::string(suffix)).c_str());
    std::remove((big_prefix + std::string(suffix)).c_str());
  }
  return 0;
}
