// Online serving bench: trains a bench-scale RRRE model, checkpoints it,
// starts an in-process rrre_served Server on an ephemeral port, and drives it
// with the loadgen client. Reports sustained QPS, round-trip latency
// percentiles and the micro-batcher's realized batch-size distribution, and
// writes the numbers to BENCH_serving.json for tracking across commits.
//
// Runs the identical load twice — once with the metrics registry enabled
// (the production default) and once with it disabled — and reports the QPS
// overhead the instrumentation costs, so the "<3% regression" budget is
// checked on every bench run rather than assumed.
//
//   bench_serving [--scale=0.15] [--connections=8] [--requests=5000]
//                 [--qps=0] [--max_batch=64] [--max_delay_us=1000]
//                 [--out=BENCH_serving.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "core/trainer.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

std::string JsonHistogram(const rrre::common::Histogram& h) {
  return rrre::common::StrFormat(
      "{\"count\": %lld, \"mean\": %.3f, \"p50\": %.1f, \"p95\": %.1f, "
      "\"p99\": %.1f, \"min\": %.1f, \"max\": %.1f}",
      static_cast<long long>(h.count()), h.Mean(), h.Percentile(50.0),
      h.Percentile(95.0), h.Percentile(99.0), h.Min(), h.Max());
}

struct PhaseResult {
  rrre::serve::LoadGenReport report;
  rrre::serve::ServerStats stats;
  std::string metrics_text;  ///< Empty when metrics were disabled.
};

/// One full server lifecycle (start -> loadgen -> drain -> shutdown) so the
/// metrics-on and metrics-off measurements see identical conditions.
PhaseResult RunPhase(const rrre::serve::ServerOptions& server_options,
                     rrre::serve::LoadGenOptions load) {
  using namespace rrre;  // NOLINT(build/namespaces)
  auto server = serve::Server::Start(server_options);
  RRRE_CHECK_OK(server.status());
  load.port = server.value()->port();
  auto report = serve::RunLoadGen(load);
  RRRE_CHECK_OK(report.status());
  PhaseResult out;
  out.report = report.value();
  out.metrics_text = server.value()->RenderMetricsText();
  server.value()->Shutdown();
  out.stats = server.value()->stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.15);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddInt("connections", 8, "concurrent loadgen connections");
  flags.AddInt("requests", 5000, "total requests across all connections");
  flags.AddDouble("qps", 0.0, "target aggregate rate (0 = closed-loop max)");
  flags.AddInt("max_batch", 64, "server: max expanded pairs per batch");
  flags.AddInt("max_delay_us", 1000, "server: batching linger");
  flags.AddInt("queue_cap", 1024, "server: admission queue bound");
  flags.AddString("out", "BENCH_serving.json", "JSON results path");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  auto bundle = bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                                   opts.base_seed);
  const core::RrreConfig config =
      bench::DefaultRrreConfig(opts, opts.base_seed);
  std::printf("training on %ld reviews...\n",
              static_cast<long>(bundle.train.size()));
  core::RrreTrainer trainer(config);
  trainer.Fit(bundle.train);
  const std::string prefix = "/tmp/rrre_bench_serving_ckpt";
  RRRE_CHECK_OK(trainer.Save(prefix));

  serve::ServerOptions server_options;
  server_options.config = config;
  server_options.model_prefix = prefix;
  server_options.port = 0;  // Ephemeral.
  server_options.batcher.max_batch = flags.GetInt("max_batch");
  server_options.batcher.max_delay_us = flags.GetInt("max_delay_us");
  server_options.batcher.queue_capacity = flags.GetInt("queue_cap");
  std::printf("serving %lld users x %lld items\n",
              static_cast<long long>(bundle.train.num_users()),
              static_cast<long long>(bundle.train.num_items()));

  serve::LoadGenOptions load;
  load.connections = flags.GetInt("connections");
  load.total_requests = flags.GetInt("requests");
  load.target_qps = flags.GetDouble("qps");
  load.seed = opts.base_seed;

  // Metrics-off first (the baseline), then the instrumented run the rest of
  // the report describes.
  server_options.enable_metrics = false;
  std::printf("phase 1/2: metrics off...\n");
  const PhaseResult off = RunPhase(server_options, load);
  server_options.enable_metrics = true;
  std::printf("phase 2/2: metrics on...\n");
  const PhaseResult on = RunPhase(server_options, load);

  const serve::LoadGenReport& r = on.report;
  const serve::ServerStats& stats = on.stats;
  const double overhead_pct =
      off.report.qps > 0.0 ? (off.report.qps - r.qps) / off.report.qps * 100.0
                           : 0.0;

  std::printf("\n%lld requests over %lld connections in %.3fs -> %.1f qps\n",
              static_cast<long long>(r.sent),
              static_cast<long long>(load.connections), r.seconds, r.qps);
  std::printf("  scored=%lld overloaded=%lld errors=%lld\n",
              static_cast<long long>(r.scored),
              static_cast<long long>(r.overloaded),
              static_cast<long long>(r.errors));
  std::printf("  latency (us): %s\n", r.latency_us.Summary().c_str());
  std::printf("  batch size (pairs): %s\n",
              stats.batcher.batch_pairs.Summary().c_str());
  std::printf("  batch latency (us): %s\n",
              stats.batcher.batch_latency_us.Summary().c_str());
  std::printf("  metrics off: %.1f qps -> metrics overhead %.2f%%\n",
              off.report.qps, overhead_pct);

  const std::string json = common::StrFormat(
      "{\n"
      "  \"bench\": \"serving\",\n"
      "  \"dataset\": \"%s\",\n"
      "  \"scale\": %.3f,\n"
      "  \"connections\": %lld,\n"
      "  \"requests\": %lld,\n"
      "  \"target_qps\": %.1f,\n"
      "  \"max_batch\": %lld,\n"
      "  \"max_delay_us\": %lld,\n"
      "  \"seconds\": %.3f,\n"
      "  \"qps\": %.1f,\n"
      "  \"scored\": %lld,\n"
      "  \"overloaded\": %lld,\n"
      "  \"errors\": %lld,\n"
      "  \"latency_us\": %s,\n"
      "  \"batch_pairs\": %s,\n"
      "  \"batch_latency_us\": %s,\n"
      "  \"batches\": %lld,\n"
      "  \"pairs_scored\": %lld,\n"
      "  \"qps_metrics_off\": %.1f,\n"
      "  \"metrics_overhead_pct\": %.2f\n"
      "}\n",
      flags.GetString("dataset").c_str(), opts.scale,
      static_cast<long long>(load.connections),
      static_cast<long long>(load.total_requests), load.target_qps,
      static_cast<long long>(server_options.batcher.max_batch),
      static_cast<long long>(server_options.batcher.max_delay_us), r.seconds,
      r.qps, static_cast<long long>(r.scored),
      static_cast<long long>(r.overloaded),
      static_cast<long long>(r.errors), JsonHistogram(r.latency_us).c_str(),
      JsonHistogram(stats.batcher.batch_pairs).c_str(),
      JsonHistogram(stats.batcher.batch_latency_us).c_str(),
      static_cast<long long>(stats.batcher.batches),
      static_cast<long long>(stats.batcher.pairs_scored), off.report.qps,
      overhead_pct);
  RRRE_CHECK_OK(common::WriteFile(flags.GetString("out"), json));
  std::printf("\nresults written to %s\n", flags.GetString("out").c_str());

  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + std::string(suffix)).c_str());
  }
  return 0;
}
