// Online serving bench: trains a bench-scale RRRE model, checkpoints it,
// starts an in-process rrre_served Server on an ephemeral port, and drives it
// with the loadgen client. Reports sustained QPS, round-trip latency
// percentiles and the micro-batcher's realized batch-size distribution, and
// writes the numbers to BENCH_serving.json for tracking across commits.
//
//   bench_serving [--scale=0.15] [--connections=8] [--requests=5000]
//                 [--qps=0] [--max_batch=64] [--max_delay_us=1000]
//                 [--out=BENCH_serving.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "core/trainer.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

std::string JsonHistogram(const rrre::common::Histogram& h) {
  return rrre::common::StrFormat(
      "{\"count\": %lld, \"mean\": %.3f, \"p50\": %.1f, \"p95\": %.1f, "
      "\"p99\": %.1f, \"min\": %.1f, \"max\": %.1f}",
      static_cast<long long>(h.count()), h.Mean(), h.Percentile(50.0),
      h.Percentile(95.0), h.Percentile(99.0), h.Min(), h.Max());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.15);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddInt("connections", 8, "concurrent loadgen connections");
  flags.AddInt("requests", 5000, "total requests across all connections");
  flags.AddDouble("qps", 0.0, "target aggregate rate (0 = closed-loop max)");
  flags.AddInt("max_batch", 64, "server: max expanded pairs per batch");
  flags.AddInt("max_delay_us", 1000, "server: batching linger");
  flags.AddInt("queue_cap", 1024, "server: admission queue bound");
  flags.AddString("out", "BENCH_serving.json", "JSON results path");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  auto bundle = bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                                   opts.base_seed);
  const core::RrreConfig config =
      bench::DefaultRrreConfig(opts, opts.base_seed);
  std::printf("training on %ld reviews...\n",
              static_cast<long>(bundle.train.size()));
  core::RrreTrainer trainer(config);
  trainer.Fit(bundle.train);
  const std::string prefix = "/tmp/rrre_bench_serving_ckpt";
  RRRE_CHECK_OK(trainer.Save(prefix));

  serve::ServerOptions server_options;
  server_options.config = config;
  server_options.model_prefix = prefix;
  server_options.port = 0;  // Ephemeral.
  server_options.batcher.max_batch = flags.GetInt("max_batch");
  server_options.batcher.max_delay_us = flags.GetInt("max_delay_us");
  server_options.batcher.queue_capacity = flags.GetInt("queue_cap");
  auto server = serve::Server::Start(server_options);
  RRRE_CHECK_OK(server.status());
  std::printf("serving %lld users x %lld items on port %u\n",
              static_cast<long long>(bundle.train.num_users()),
              static_cast<long long>(bundle.train.num_items()),
              server.value()->port());

  serve::LoadGenOptions load;
  load.port = server.value()->port();
  load.connections = flags.GetInt("connections");
  load.total_requests = flags.GetInt("requests");
  load.target_qps = flags.GetDouble("qps");
  load.seed = opts.base_seed;
  auto report = serve::RunLoadGen(load);
  RRRE_CHECK_OK(report.status());
  const serve::LoadGenReport& r = report.value();

  server.value()->Shutdown();
  const serve::ServerStats stats = server.value()->stats();

  std::printf("\n%lld requests over %lld connections in %.3fs -> %.1f qps\n",
              static_cast<long long>(r.sent),
              static_cast<long long>(load.connections), r.seconds, r.qps);
  std::printf("  scored=%lld overloaded=%lld errors=%lld\n",
              static_cast<long long>(r.scored),
              static_cast<long long>(r.overloaded),
              static_cast<long long>(r.errors));
  std::printf("  latency (us): %s\n", r.latency_us.Summary().c_str());
  std::printf("  batch size (pairs): %s\n",
              stats.batcher.batch_pairs.Summary().c_str());
  std::printf("  batch latency (us): %s\n",
              stats.batcher.batch_latency_us.Summary().c_str());

  const std::string json = common::StrFormat(
      "{\n"
      "  \"bench\": \"serving\",\n"
      "  \"dataset\": \"%s\",\n"
      "  \"scale\": %.3f,\n"
      "  \"connections\": %lld,\n"
      "  \"requests\": %lld,\n"
      "  \"target_qps\": %.1f,\n"
      "  \"max_batch\": %lld,\n"
      "  \"max_delay_us\": %lld,\n"
      "  \"seconds\": %.3f,\n"
      "  \"qps\": %.1f,\n"
      "  \"scored\": %lld,\n"
      "  \"overloaded\": %lld,\n"
      "  \"errors\": %lld,\n"
      "  \"latency_us\": %s,\n"
      "  \"batch_pairs\": %s,\n"
      "  \"batch_latency_us\": %s,\n"
      "  \"batches\": %lld,\n"
      "  \"pairs_scored\": %lld\n"
      "}\n",
      flags.GetString("dataset").c_str(), opts.scale,
      static_cast<long long>(load.connections),
      static_cast<long long>(load.total_requests), load.target_qps,
      static_cast<long long>(server_options.batcher.max_batch),
      static_cast<long long>(server_options.batcher.max_delay_us), r.seconds,
      r.qps, static_cast<long long>(r.scored),
      static_cast<long long>(r.overloaded),
      static_cast<long long>(r.errors), JsonHistogram(r.latency_us).c_str(),
      JsonHistogram(stats.batcher.batch_pairs).c_str(),
      JsonHistogram(stats.batcher.batch_latency_us).c_str(),
      static_cast<long long>(stats.batcher.batches),
      static_cast<long long>(stats.batcher.pairs_scored));
  RRRE_CHECK_OK(common::WriteFile(flags.GetString("out"), json));
  std::printf("\nresults written to %s\n", flags.GetString("out").c_str());

  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + std::string(suffix)).c_str());
  }
  return 0;
}
