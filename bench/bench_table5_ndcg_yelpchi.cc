// Regenerates Table V: NDCG@k of the compared reliability methods on the
// YelpChi profile.

#include "bench/ndcg_table.h"
#include "bench/paper_reference.h"

int main(int argc, char** argv) {
  return rrre::bench::RunNdcgTable(
      "Table V", "yelpchi", rrre::bench::paper::Table5NdcgYelpChi(), argc,
      argv);
}
