// Regenerates Table II: statistics of the five synthetic dataset profiles.
// The paper's absolute counts are ~10x larger (see DESIGN.md on scaling);
// the shape claims that matter are the orderings (YelpZip > YelpNYC >
// YelpChi, Amazon fake-rates ~2x Yelp's, Amazon item degree < 3).

#include <cstdio>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  std::printf("Table II: statistics of the synthetic datasets (scale=%.2f)\n\n",
              opts.scale);
  bench::PrintRow("", {"#Reviews", "%Fake", "#Items", "#Users", "med|W^u|",
                       "med|W^i|", "max|W^i|"});
  for (const auto& name : bench::DatasetNames()) {
    const auto bundle = bench::MakeDataset(name, opts.scale, opts.base_seed);
    const auto s = bundle.full.Stats();
    bench::PrintRow(
        name,
        {std::to_string(s.num_reviews),
         common::StrFormat("%.2f%%", 100.0 * s.fake_fraction),
         std::to_string(s.num_items), std::to_string(s.num_users),
         std::to_string(s.median_user_degree),
         std::to_string(s.median_item_degree),
         std::to_string(s.max_item_degree)});
  }
  std::printf(
      "\nPaper (full size): yelpchi 67395/13.23%%/201/38063, "
      "yelpnyc 359052/10.27%%/923/160225, yelpzip 608598/13.22%%/5044/260277,\n"
      "musics 70170/24.93%%/24639/16296, cds 49085/22.39%%/26290/23572\n");
  return 0;
}
