#include "bench/ndcg_table.h"

#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "eval/metrics.h"

namespace rrre::bench {

int RunNdcgTable(const std::string& table_name, const std::string& dataset,
                 const std::map<int64_t, std::map<std::string, double>>&
                     paper_values,
                 int argc, char** argv) {
  common::FlagParser flags;
  RegisterBenchFlags(flags);
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const BenchOptions opts = ReadBenchOptions(flags);

  const auto bundle = MakeDataset(dataset, opts.scale, opts.base_seed);
  const auto labels = LabelsOf(bundle.test);
  const auto models = ReliabilityModelNames();

  std::map<std::string, std::vector<double>> scores;
  for (const auto& model_name : models) {
    auto model = MakeReliabilityModel(model_name, opts, opts.base_seed);
    model->Fit(bundle.train);
    scores[model_name] = model->ScoreReviews(bundle.test);
  }

  std::printf(
      "%s: NDCG@k of reliability ranking on %s "
      "(scale=%.2f, epochs=%ld, test size=%ld)\n",
      table_name.c_str(), dataset.c_str(), opts.scale,
      static_cast<long>(opts.epochs), static_cast<long>(bundle.test.size()));
  std::printf("Each cell: measured (paper). k clamps to the test size.\n\n");
  PrintRow("k", models, 6, 16);
  for (const auto& [k, paper_row] : paper_values) {
    std::vector<std::string> cells;
    for (const auto& model_name : models) {
      std::string cell = common::StrFormat(
          "%.3f", eval::NdcgAtK(scores[model_name], labels, k));
      auto it = paper_row.find(model_name);
      if (it != paper_row.end()) {
        cell += common::StrFormat(" (%.3f)", it->second);
      }
      cells.push_back(cell);
    }
    PrintRow(std::to_string(k), cells, 6, 16);
  }
  std::printf(
      "\nShape claims to check: RRRE highest at every k; values decay as k "
      "grows; SpEagle+ second; ICWSM13/REV2 far lower.\n");
  return 0;
}

}  // namespace rrre::bench
