// Property-style parameterized tests of the evaluation metrics: invariances
// and symmetries that must hold for any scored, labeled population.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "eval/metrics.h"

namespace rrre::eval {
namespace {

using common::Rng;

struct Population {
  std::vector<double> scores;
  std::vector<int> labels;
};

Population MakePopulation(uint64_t seed, size_t n, double positive_rate,
                          bool informative) {
  Rng rng(seed);
  Population p;
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(positive_rate) ? 1 : 0;
    double score = rng.Normal();
    if (informative) score += label == 1 ? 1.0 : -1.0;
    p.labels.push_back(label);
    p.scores.push_back(score);
  }
  return p;
}

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, AucInvariantUnderMonotoneTransform) {
  Population p = MakePopulation(GetParam(), 300, 0.8, true);
  std::vector<double> transformed;
  for (double s : p.scores) transformed.push_back(std::tanh(s / 3.0) * 10.0);
  EXPECT_NEAR(Auc(p.scores, p.labels), Auc(transformed, p.labels), 1e-12);
}

TEST_P(MetricPropertyTest, AucOfNegatedScoresIsComplement) {
  Population p = MakePopulation(GetParam(), 300, 0.8, true);
  std::vector<double> negated;
  for (double s : p.scores) negated.push_back(-s);
  EXPECT_NEAR(Auc(p.scores, p.labels) + Auc(negated, p.labels), 1.0, 1e-12);
}

TEST_P(MetricPropertyTest, InformativeScoresBeatChance) {
  Population p = MakePopulation(GetParam(), 400, 0.8, true);
  EXPECT_GT(Auc(p.scores, p.labels), 0.6);
}

TEST_P(MetricPropertyTest, UninformativeScoresNearChance) {
  Population p = MakePopulation(GetParam(), 2000, 0.8, false);
  EXPECT_NEAR(Auc(p.scores, p.labels), 0.5, 0.06);
}

TEST_P(MetricPropertyTest, ApAtLeastPositiveRateForPerfectRanking) {
  Population p = MakePopulation(GetParam(), 200, 0.7, true);
  // Perfect ranking: score == label.
  std::vector<double> perfect;
  for (int l : p.labels) perfect.push_back(l);
  EXPECT_NEAR(AveragePrecision(perfect, p.labels), 1.0, 1e-12);
  // Any ranking is at least... and at most 1.
  const double ap = AveragePrecision(p.scores, p.labels);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

TEST_P(MetricPropertyTest, ApInvariantUnderMonotoneTransform) {
  Population p = MakePopulation(GetParam(), 300, 0.8, true);
  std::vector<double> transformed;
  for (double s : p.scores) transformed.push_back(std::exp(s * 0.3));
  EXPECT_NEAR(AveragePrecision(p.scores, p.labels),
              AveragePrecision(transformed, p.labels), 1e-12);
}

TEST_P(MetricPropertyTest, NdcgMonotoneInRankingQuality) {
  Population p = MakePopulation(GetParam(), 500, 0.8, true);
  // Perfect vs random ranking.
  std::vector<double> perfect;
  for (int l : p.labels) perfect.push_back(l);
  Rng rng(GetParam() ^ 0xabc);
  std::vector<double> random;
  for (size_t i = 0; i < p.labels.size(); ++i) random.push_back(rng.Uniform());
  for (int64_t k : {50L, 200L}) {
    EXPECT_GE(NdcgAtK(perfect, p.labels, k) + 1e-12,
              NdcgAtK(p.scores, p.labels, k));
    EXPECT_GE(NdcgAtK(p.scores, p.labels, k) + 0.1,
              NdcgAtK(random, p.labels, k));
  }
}

TEST_P(MetricPropertyTest, NdcgBoundedByUnitInterval) {
  Population p = MakePopulation(GetParam(), 300, 0.5, false);
  for (int64_t k : {1L, 10L, 100L, 1000L}) {
    const double v = NdcgAtK(p.scores, p.labels, k);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_P(MetricPropertyTest, PrecisionAtFullDepthIsPositiveRate) {
  Population p = MakePopulation(GetParam(), 400, 0.8, true);
  int64_t positives = 0;
  for (int l : p.labels) positives += l;
  EXPECT_NEAR(
      PrecisionAtK(p.scores, p.labels,
                   static_cast<int64_t>(p.labels.size())),
      static_cast<double>(positives) / static_cast<double>(p.labels.size()),
      1e-12);
}

TEST_P(MetricPropertyTest, BrmseEqualsRmseOnBenignSubset) {
  Rng rng(GetParam());
  std::vector<double> preds;
  std::vector<double> targets;
  std::vector<int> labels;
  std::vector<double> benign_preds;
  std::vector<double> benign_targets;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.Uniform(1.0, 5.0);
    const double pr = t + rng.Normal();
    const int l = rng.Bernoulli(0.85) ? 1 : 0;
    preds.push_back(pr);
    targets.push_back(t);
    labels.push_back(l);
    if (l == 1) {
      benign_preds.push_back(pr);
      benign_targets.push_back(t);
    }
  }
  EXPECT_NEAR(BiasedRmse(preds, targets, labels),
              Rmse(benign_preds, benign_targets), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(3u, 17u, 59u, 101u, 2024u));

}  // namespace
}  // namespace rrre::eval
