#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/behavior_features.h"
#include "baselines/deepconn.h"
#include "baselines/der.h"
#include "baselines/icwsm13.h"
#include "baselines/logreg.h"
#include "baselines/narre.h"
#include "baselines/pmf.h"
#include "baselines/rev2.h"
#include "baselines/rrre_adapter.h"
#include "baselines/speagle.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace rrre::baselines {
namespace {

using common::Rng;

struct SplitCorpus {
  data::ReviewDataset train;
  data::ReviewDataset test;
  data::SyntheticWorld world;
};

SplitCorpus MakeCorpus(double scale = 0.08, uint64_t seed = 5) {
  Rng rng(seed);
  data::SyntheticWorld world;
  data::ReviewDataset full = data::GenerateSyntheticDataset(
      data::YelpChiProfile(scale), rng, &world);
  auto [train, test] = full.Split(0.7, rng);
  return SplitCorpus{std::move(train), std::move(test), std::move(world)};
}

std::vector<double> Targets(const data::ReviewDataset& ds) {
  std::vector<double> out;
  for (const auto& r : ds.reviews()) out.push_back(r.rating);
  return out;
}

std::vector<int> Labels(const data::ReviewDataset& ds) {
  std::vector<int> out;
  for (const auto& r : ds.reviews()) out.push_back(r.is_benign() ? 1 : 0);
  return out;
}

// ---------------------------------------------------------------------------
// PMF
// ---------------------------------------------------------------------------

TEST(PmfTest, BeatsGlobalMeanOnHeldOut) {
  SplitCorpus c = MakeCorpus();
  Pmf pmf;
  pmf.Fit(c.train);
  const auto preds = pmf.PredictDataset(c.test);
  const auto targets = Targets(c.test);
  const double pmf_rmse = eval::Rmse(preds, targets);
  double mean = 0.0;
  for (const auto& r : c.train.reviews()) mean += r.rating;
  mean /= static_cast<double>(c.train.size());
  const double mean_rmse =
      eval::Rmse(std::vector<double>(targets.size(), mean), targets);
  EXPECT_LT(pmf_rmse, mean_rmse);
}

TEST(PmfTest, FitsTrainingSetClosely) {
  SplitCorpus c = MakeCorpus();
  Pmf::Config config;
  config.epochs = 50;
  Pmf pmf(config);
  pmf.Fit(c.train);
  const double rmse =
      eval::Rmse(pmf.PredictDataset(c.train), Targets(c.train));
  EXPECT_LT(rmse, 0.9);
}

TEST(PmfTest, DeterministicForSeed) {
  SplitCorpus c = MakeCorpus();
  Pmf a;
  a.Fit(c.train);
  Pmf b;
  b.Fit(c.train);
  EXPECT_EQ(a.PredictDataset(c.test), b.PredictDataset(c.test));
}

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

TEST(LogRegTest, SeparableDataLearned) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Normal();
    const double b = rng.Normal();
    x.push_back({a, b});
    y.push_back(a + b > 0 ? 1 : 0);
  }
  LogisticRegression clf;
  clf.Fit(x, y);
  const auto proba = clf.PredictProba(x);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    correct += ((proba[i] > 0.5) == (y[i] == 1)) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.95);
}

TEST(LogRegTest, ProbabilitiesInUnitInterval) {
  std::vector<std::vector<double>> x = {{100.0}, {-100.0}, {0.0}};
  std::vector<int> y = {1, 0, 1};
  LogisticRegression clf;
  clf.Fit(x, y);
  for (double p : clf.PredictProba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogRegTest, ConstantFeatureIsHarmless) {
  std::vector<std::vector<double>> x = {{1.0, 5.0}, {-1.0, 5.0}, {2.0, 5.0},
                                        {-2.0, 5.0}};
  std::vector<int> y = {1, 0, 1, 0};
  LogisticRegression clf;
  clf.Fit(x, y);
  const auto p = clf.PredictProba(x);
  EXPECT_GT(p[0], 0.5);
  EXPECT_LT(p[1], 0.5);
}

// ---------------------------------------------------------------------------
// Behavior features
// ---------------------------------------------------------------------------

TEST(BehaviorFeaturesTest, FakeReviewsHaveStrongerSignals) {
  SplitCorpus c = MakeCorpus(0.15);
  const data::ReviewDataset combined =
      data::ReviewDataset::Merge(c.train, c.test);
  const auto features = ComputeBehaviorFeatures(combined);
  double fake_dev = 0.0;
  double benign_dev = 0.0;
  double fake_burst = 0.0;
  double benign_burst = 0.0;
  int64_t nf = 0;
  int64_t nb = 0;
  for (int64_t i = 0; i < combined.size(); ++i) {
    const auto& f = features[static_cast<size_t>(i)];
    if (combined.review(i).is_benign()) {
      benign_dev += f.rating_deviation;
      benign_burst += f.item_burst;
      ++nb;
    } else {
      fake_dev += f.rating_deviation;
      fake_burst += f.item_burst;
      ++nf;
    }
  }
  ASSERT_GT(nf, 0);
  ASSERT_GT(nb, 0);
  EXPECT_GT(fake_dev / nf, benign_dev / nb);
  EXPECT_GT(fake_burst / nf, benign_burst / nb);
}

TEST(BehaviorFeaturesTest, VectorHasDeclaredArity) {
  SplitCorpus c = MakeCorpus(0.05);
  const auto features = ComputeBehaviorFeatures(c.train);
  ASSERT_FALSE(features.empty());
  EXPECT_EQ(features[0].ToVector().size(),
            static_cast<size_t>(BehaviorFeatures::kNumFeatures));
}

// ---------------------------------------------------------------------------
// Reliability baselines
// ---------------------------------------------------------------------------

TEST(Icwsm13Test, DetectsPlantedFraud) {
  SplitCorpus c = MakeCorpus(0.15);
  Icwsm13 detector;
  detector.Fit(c.train);
  const auto scores = detector.ScoreReviews(c.test);
  EXPECT_GT(eval::Auc(scores, Labels(c.test)), 0.7);
}

TEST(SpEagleTest, DetectsPlantedFraud) {
  SplitCorpus c = MakeCorpus(0.15);
  SpEaglePlus detector;
  detector.Fit(c.train);
  const auto scores = detector.ScoreReviews(c.test);
  EXPECT_GT(eval::Auc(scores, Labels(c.test)), 0.7);
}

TEST(SpEagleTest, UnsupervisedVariantBeatsChanceWithoutLabels) {
  SplitCorpus c = MakeCorpus(0.15);
  SpEaglePlus::Config config;
  config.supervised_priors = false;  // Plain SpEagle.
  SpEaglePlus detector(config);
  detector.Fit(c.train);
  const auto scores = detector.ScoreReviews(c.test);
  EXPECT_GT(eval::Auc(scores, Labels(c.test)), 0.6);
}

TEST(SpEagleTest, SupervisionImprovesOverUnsupervised) {
  SplitCorpus c = MakeCorpus(0.15);
  SpEaglePlus::Config unsup_config;
  unsup_config.supervised_priors = false;
  SpEaglePlus unsupervised(unsup_config);
  unsupervised.Fit(c.train);
  SpEaglePlus supervised;
  supervised.Fit(c.train);
  const auto labels = Labels(c.test);
  EXPECT_GE(eval::Auc(supervised.ScoreReviews(c.test), labels) + 0.03,
            eval::Auc(unsupervised.ScoreReviews(c.test), labels));
}

TEST(SpEagleTest, ScoresAreProbabilities) {
  SplitCorpus c = MakeCorpus(0.05);
  SpEaglePlus detector;
  detector.Fit(c.train);
  for (double s : detector.ScoreReviews(c.test)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Rev2Test, FairnessGoodnessReliabilityBounded) {
  SplitCorpus c = MakeCorpus(0.1);
  Rev2 rev2;
  const auto solution = rev2.Solve(c.train);
  EXPECT_TRUE(solution.converged);
  for (double f : solution.fairness) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  for (double g : solution.goodness) {
    EXPECT_GE(g, -1.0);
    EXPECT_LE(g, 1.0);
  }
  for (double r : solution.reliability) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Rev2Test, FraudstersAreLessFair) {
  SplitCorpus c = MakeCorpus(0.15);
  Rev2 rev2;
  const data::ReviewDataset combined =
      data::ReviewDataset::Merge(c.train, c.test);
  const auto solution = rev2.Solve(combined);
  double fraud_f = 0.0;
  double benign_f = 0.0;
  int64_t nf = 0;
  int64_t nb = 0;
  for (int64_t u = 0; u < combined.num_users(); ++u) {
    if (combined.ReviewsByUser(u).empty()) continue;
    if (c.world.is_fraudster[static_cast<size_t>(u)]) {
      fraud_f += solution.fairness[static_cast<size_t>(u)];
      ++nf;
    } else {
      benign_f += solution.fairness[static_cast<size_t>(u)];
      ++nb;
    }
  }
  ASSERT_GT(nf, 0);
  ASSERT_GT(nb, 0);
  EXPECT_LT(fraud_f / nf, benign_f / nb);
}

TEST(Rev2Test, RanksBetterThanChance) {
  SplitCorpus c = MakeCorpus(0.15);
  Rev2 detector;
  detector.Fit(c.train);
  const auto scores = detector.ScoreReviews(c.test);
  EXPECT_GT(eval::Auc(scores, Labels(c.test)), 0.55);
}

// ---------------------------------------------------------------------------
// Neural rating baselines (kept tiny for test speed)
// ---------------------------------------------------------------------------

NeuralRatingBaseline::CommonConfig TinyCommon() {
  NeuralRatingBaseline::CommonConfig c;
  c.word_dim = 8;
  c.epochs = 2;
  c.batch_size = 16;
  c.pretrain_epochs = 1;
  return c;
}

TEST(DeepConnTest, TrainsAndPredictsReasonably) {
  SplitCorpus c = MakeCorpus(0.05);
  DeepCoNN::Config config;
  config.common = TinyCommon();
  config.doc_tokens = 32;
  config.filters = 8;
  config.latent_dim = 4;
  DeepCoNN model(config);
  model.Fit(c.train);
  const auto preds = model.PredictDataset(c.test);
  ASSERT_EQ(preds.size(), static_cast<size_t>(c.test.size()));
  for (double p : preds) EXPECT_TRUE(std::isfinite(p));
  EXPECT_LT(eval::Rmse(preds, Targets(c.test)), 2.5);
}

TEST(NarreTest, TrainsAndPredictsReasonably) {
  SplitCorpus c = MakeCorpus(0.05);
  Narre::Config config;
  config.common = TinyCommon();
  config.max_tokens = 8;
  config.s_u = 3;
  config.s_i = 4;
  config.filters = 8;
  config.id_dim = 4;
  config.attention_dim = 6;
  config.latent_dim = 8;
  Narre model(config);
  model.Fit(c.train);
  const auto preds = model.PredictDataset(c.test);
  ASSERT_EQ(preds.size(), static_cast<size_t>(c.test.size()));
  EXPECT_LT(eval::Rmse(preds, Targets(c.test)), 2.0);
}

TEST(DerTest, TrainsAndPredictsReasonably) {
  SplitCorpus c = MakeCorpus(0.05);
  Der::Config config;
  config.common = TinyCommon();
  config.max_tokens = 8;
  config.s_u = 3;
  config.s_i = 4;
  config.filters = 8;
  config.hidden = 8;
  config.id_dim = 4;
  Der model(config);
  model.Fit(c.train);
  const auto preds = model.PredictDataset(c.test);
  ASSERT_EQ(preds.size(), static_cast<size_t>(c.test.size()));
  EXPECT_LT(eval::Rmse(preds, Targets(c.test)), 2.0);
}

TEST(NeuralBaselineTest, PredictBeforeFitIsFatal) {
  DeepCoNN model;
  EXPECT_DEATH(model.PredictRatings({{0, 0}}), "Fit");
}

// ---------------------------------------------------------------------------
// RRRE adapter
// ---------------------------------------------------------------------------

TEST(RrreAdapterTest, ServesBothInterfaces) {
  SplitCorpus c = MakeCorpus(0.05);
  core::RrreConfig config;
  config.word_dim = 8;
  config.rev_dim = 8;
  config.id_dim = 4;
  config.attention_dim = 6;
  config.fm_factors = 4;
  config.max_tokens = 8;
  config.s_u = 3;
  config.s_i = 4;
  config.epochs = 2;
  config.pretrain_epochs = 1;
  RrreAdapter adapter(config);
  adapter.Fit(c.train);
  RatingPredictor& rating = adapter;
  ReliabilityPredictor& reliability = adapter;
  const auto ratings = rating.PredictDataset(c.test);
  const auto scores = reliability.ScoreReviews(c.test);
  EXPECT_EQ(ratings.size(), static_cast<size_t>(c.test.size()));
  EXPECT_EQ(scores.size(), static_cast<size_t>(c.test.size()));
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace rrre::baselines
