#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/tokenizer.h"
#include "text/vocab.h"
#include "text/word2vec.h"

namespace rrre::text {
namespace {

using common::Rng;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  auto toks = Tokenize("Great FOOD, friendly service!");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "great");
  EXPECT_EQ(toks[1], "food");
  EXPECT_EQ(toks[2], "friendly");
  EXPECT_EQ(toks[3], "service");
}

TEST(TokenizerTest, KeepsDigitsInsideTokens) {
  auto toks = Tokenize("open 24 hours, top10 pick");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1], "24");
  EXPECT_EQ(toks[3], "top10");
}

TEST(TokenizerTest, DropsApostrophes) {
  auto toks = Tokenize("don't, won't");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "dont");
  EXPECT_EQ(toks[1], "wont");
}

TEST(TokenizerTest, EmptyAndSymbolOnlyInputs) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! --- ???").empty());
}

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

std::vector<std::vector<std::string>> SmallCorpus() {
  return {
      {"good", "food", "good", "service"},
      {"bad", "food"},
      {"good", "vibes"},
  };
}

TEST(VocabTest, SpecialsAreReserved) {
  Vocabulary v = Vocabulary::Build(SmallCorpus());
  EXPECT_EQ(v.Token(Vocabulary::kPadId), "<pad>");
  EXPECT_EQ(v.Token(Vocabulary::kUnkId), "<unk>");
  EXPECT_EQ(v.Id("<pad>"), Vocabulary::kPadId);
}

TEST(VocabTest, FrequencyOrderAfterSpecials) {
  Vocabulary v = Vocabulary::Build(SmallCorpus());
  // "good" (3) must come before "food" (2) before singletons.
  EXPECT_EQ(v.Id("good"), 2);
  EXPECT_EQ(v.Id("food"), 3);
  EXPECT_LT(v.Id("food"), v.Id("bad"));
}

TEST(VocabTest, MinCountFiltersRareTokens) {
  Vocabulary v = Vocabulary::Build(SmallCorpus(), /*min_count=*/2);
  EXPECT_TRUE(v.Contains("good"));
  EXPECT_TRUE(v.Contains("food"));
  EXPECT_FALSE(v.Contains("vibes"));
  EXPECT_EQ(v.Id("vibes"), Vocabulary::kUnkId);
}

TEST(VocabTest, EncodeMapsUnknownsToUnk) {
  Vocabulary v = Vocabulary::Build(SmallCorpus());
  auto ids = v.Encode({"good", "zebra"});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], v.Id("good"));
  EXPECT_EQ(ids[1], Vocabulary::kUnkId);
}

TEST(VocabTest, EncodePaddedTruncatesAndPads) {
  Vocabulary v = Vocabulary::Build(SmallCorpus());
  auto padded = v.EncodePadded({"good"}, 3);
  ASSERT_EQ(padded.size(), 3u);
  EXPECT_EQ(padded[0], v.Id("good"));
  EXPECT_EQ(padded[1], Vocabulary::kPadId);
  EXPECT_EQ(padded[2], Vocabulary::kPadId);

  auto truncated = v.EncodePadded({"good", "food", "bad", "vibes"}, 2);
  ASSERT_EQ(truncated.size(), 2u);
  EXPECT_EQ(truncated[0], v.Id("good"));
  EXPECT_EQ(truncated[1], v.Id("food"));
}

TEST(VocabTest, SizeCountsSpecials) {
  Vocabulary v = Vocabulary::Build(SmallCorpus());
  EXPECT_EQ(v.size(), 2 + 5);  // pad, unk + good food service bad vibes.
}

// ---------------------------------------------------------------------------
// SkipGram
// ---------------------------------------------------------------------------

/// Synthetic corpus with two disjoint topics; words within a topic co-occur.
std::vector<std::vector<int64_t>> TwoTopicCorpus(Rng& rng, int64_t words_per_topic,
                                                 int docs, int doc_len) {
  // Ids: [2, 2+wpt) topic A, [2+wpt, 2+2*wpt) topic B.
  std::vector<std::vector<int64_t>> out;
  for (int d = 0; d < docs; ++d) {
    const int64_t base = (d % 2 == 0) ? 2 : 2 + words_per_topic;
    std::vector<int64_t> doc;
    for (int t = 0; t < doc_len; ++t) {
      doc.push_back(base + static_cast<int64_t>(
                               rng.UniformInt(static_cast<uint64_t>(words_per_topic))));
    }
    out.push_back(std::move(doc));
  }
  return out;
}

TEST(SkipGramTest, OutputShapeAndPadRowZero) {
  Rng rng(1);
  const int64_t vocab_size = 12;
  auto docs = TwoTopicCorpus(rng, 5, 10, 20);
  SkipGramTrainer trainer({.dim = 8, .window = 2, .negatives = 3, .epochs = 1},
                          vocab_size);
  tensor::Tensor table = trainer.Train(docs, rng);
  EXPECT_EQ(table.shape(), (tensor::Shape{12, 8}));
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(table.at(Vocabulary::kPadId, j), 0.0f);
  }
}

TEST(SkipGramTest, CoOccurringWordsAreMoreSimilar) {
  Rng rng(2);
  const int64_t wpt = 5;
  const int64_t vocab_size = 2 + 2 * wpt;
  auto docs = TwoTopicCorpus(rng, wpt, 200, 30);
  SkipGramTrainer trainer(
      {.dim = 16, .window = 3, .negatives = 5, .epochs = 3}, vocab_size);
  tensor::Tensor table = trainer.Train(docs, rng);

  // Average within-topic similarity must exceed cross-topic similarity.
  double within = 0.0;
  double across = 0.0;
  int nw = 0;
  int na = 0;
  for (int64_t a = 2; a < 2 + wpt; ++a) {
    for (int64_t b = a + 1; b < 2 + wpt; ++b) {
      within += CosineSimilarity(table, a, b);
      ++nw;
    }
    for (int64_t b = 2 + wpt; b < 2 + 2 * wpt; ++b) {
      across += CosineSimilarity(table, a, b);
      ++na;
    }
  }
  within /= nw;
  across /= na;
  EXPECT_GT(within, across + 0.2)
      << "within=" << within << " across=" << across;
}

TEST(SkipGramTest, DeterministicGivenSeed) {
  const int64_t vocab_size = 12;
  SkipGramTrainer trainer({.dim = 8, .window = 2, .negatives = 2, .epochs = 1},
                          vocab_size);
  Rng rng_a(3);
  auto docs_a = TwoTopicCorpus(rng_a, 5, 6, 15);
  tensor::Tensor t1 = trainer.Train(docs_a, rng_a);
  Rng rng_b(3);
  auto docs_b = TwoTopicCorpus(rng_b, 5, 6, 15);
  tensor::Tensor t2 = trainer.Train(docs_b, rng_b);
  EXPECT_EQ(t1.ToVector(), t2.ToVector());
}

TEST(CosineTest, IdenticalAndOrthogonalRows) {
  tensor::Tensor t =
      tensor::Tensor::FromVector({3, 2}, {1, 0, 0, 2, 3, 0});
  EXPECT_NEAR(CosineSimilarity(t, 0, 2), 1.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity(t, 0, 1), 0.0, 1e-6);
}

}  // namespace
}  // namespace rrre::text
