#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace rrre {
namespace {

using common::Rng;
using common::ThreadPool;
using tensor::Tensor;

/// Restores the global pool size after each test so binaries sharing a ctest
/// invocation are unaffected.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { original_size_ = ThreadPool::GlobalSize(); }
  void TearDown() override { ThreadPool::SetGlobalSize(original_size_); }

  int original_size_ = 0;
};

// ---------------------------------------------------------------------------
// Kernel-level: forward and backward of the parallelized ops are bitwise
// identical for any thread count.
// ---------------------------------------------------------------------------

struct KernelResult {
  std::vector<float> out;
  std::vector<float> ga;
  std::vector<float> gb;
  std::vector<float> gc;
};

KernelResult RunMatMul(int threads) {
  ThreadPool::SetGlobalSize(threads);
  Rng rng(123);
  Tensor a = Tensor::Randn({37, 23}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({23, 29}, rng, 1.0f, /*requires_grad=*/true);
  Tensor scale = Tensor::Randn({37, 29}, rng, 1.0f, /*requires_grad=*/false);
  Tensor out = tensor::MatMul(a, b);
  // Non-uniform output grads so backward ordering bugs are visible.
  Tensor loss = tensor::Sum(tensor::Mul(out, scale));
  loss.Backward();
  return {out.ToVector(), a.grad(), b.grad(), {}};
}

TEST_F(ParallelDeterminismTest, MatMulBitwiseAcrossThreadCounts) {
  const KernelResult serial = RunMatMul(1);
  for (int threads : {2, 4}) {
    const KernelResult parallel = RunMatMul(threads);
    EXPECT_EQ(parallel.out, serial.out) << "threads=" << threads;
    EXPECT_EQ(parallel.ga, serial.ga) << "threads=" << threads;
    EXPECT_EQ(parallel.gb, serial.gb) << "threads=" << threads;
  }
}

KernelResult RunConv(int threads) {
  ThreadPool::SetGlobalSize(threads);
  Rng rng(321);
  constexpr int64_t kBatch = 50;  // several kConvChunk-sized chunks
  constexpr int64_t kSeq = 9;
  constexpr int64_t kDim = 7;
  constexpr int64_t kWindow = 3;
  constexpr int64_t kFilters = 11;
  Tensor values =
      Tensor::Randn({kBatch * kSeq, kDim}, rng, 1.0f, /*requires_grad=*/true);
  Tensor kernel = Tensor::Randn({kWindow * kDim, kFilters}, rng, 1.0f,
                                /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({kFilters}, rng, 1.0f, /*requires_grad=*/true);
  Tensor scale =
      Tensor::Randn({kBatch, kFilters}, rng, 1.0f, /*requires_grad=*/false);
  Tensor out = tensor::Conv1dMaxPool(values, kSeq, kernel, bias);
  Tensor loss = tensor::Sum(tensor::Mul(out, scale));
  loss.Backward();
  return {out.ToVector(), values.grad(), kernel.grad(), bias.grad()};
}

TEST_F(ParallelDeterminismTest, Conv1dMaxPoolBitwiseAcrossThreadCounts) {
  const KernelResult serial = RunConv(1);
  for (int threads : {2, 4}) {
    const KernelResult parallel = RunConv(threads);
    EXPECT_EQ(parallel.out, serial.out) << "threads=" << threads;
    EXPECT_EQ(parallel.ga, serial.ga) << "threads=" << threads;
    EXPECT_EQ(parallel.gb, serial.gb) << "threads=" << threads;
    EXPECT_EQ(parallel.gc, serial.gc) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Trainer-level: the data-parallel sharded Fit reaches identical results for
// any thread count, and matches the whole-batch serial path within 1e-6.
// ---------------------------------------------------------------------------

data::ReviewDataset SmallCorpus() {
  data::ReviewDataset ds(6, 5);
  const char* texts[] = {
      "great pasta and friendly staff",   "terrible service avoid this",
      "amazing deal best place in town",  "okay food nothing special",
      "worst scam ever do not go",        "lovely ambiance great wine",
      "decent prices quick service",      "fantastic best pasta in town",
  };
  int64_t ts = 0;
  for (int64_t u = 0; u < 6; ++u) {
    for (int64_t i = 0; i < 5; ++i) {
      data::Review r;
      r.user = u;
      r.item = i;
      r.rating = static_cast<float>(1 + (u * 3 + i * 2) % 5);
      r.timestamp = ++ts;
      r.text = texts[(u * 5 + i) % 8];
      r.label = ((u + i) % 4 == 0) ? data::ReliabilityLabel::kFake
                                   : data::ReliabilityLabel::kBenign;
      ds.Add(r);
    }
  }
  ds.BuildIndex();
  return ds;
}

core::RrreConfig SmallConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 1;
  c.pretrain_epochs = 1;
  c.lr = 5e-3;
  return c;
}

struct FitResult {
  std::vector<double> losses;
  std::vector<float> params;
  std::vector<double> ratings;
  std::vector<double> reliabilities;
  double brmse = 0.0;
  double auc = 0.0;
};

FitResult RunFit(const core::RrreConfig& config, int threads) {
  ThreadPool::SetGlobalSize(threads);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreTrainer trainer(config);
  FitResult res;
  trainer.Fit(corpus, [&](const core::RrreTrainer::EpochStats& s) {
    res.losses.push_back(s.loss);
  });
  for (const Tensor& p : trainer.model().Parameters()) {
    const std::vector<float> v = p.ToVector();
    res.params.insert(res.params.end(), v.begin(), v.end());
  }
  auto preds = trainer.PredictDataset(corpus);
  res.ratings = preds.ratings;
  res.reliabilities = preds.reliabilities;
  std::vector<int> labels;
  std::vector<double> targets;
  for (const auto& r : corpus.reviews()) {
    labels.push_back(r.is_benign());
    targets.push_back(r.rating);
  }
  res.brmse = eval::BiasedRmse(preds.ratings, targets, labels);
  res.auc = eval::Auc(preds.reliabilities, labels);
  return res;
}

TEST_F(ParallelDeterminismTest, ShardedFitBitwiseAcrossThreadCounts) {
  core::RrreConfig config = SmallConfig();
  config.epochs = 2;
  config.shard_size = 4;
  const FitResult serial = RunFit(config, 1);
  ASSERT_EQ(serial.losses.size(), 2u);
  for (int threads : {2, 4}) {
    const FitResult parallel = RunFit(config, threads);
    EXPECT_EQ(parallel.losses, serial.losses) << "threads=" << threads;
    EXPECT_EQ(parallel.params, serial.params) << "threads=" << threads;
    EXPECT_EQ(parallel.ratings, serial.ratings) << "threads=" << threads;
    EXPECT_EQ(parallel.reliabilities, serial.reliabilities)
        << "threads=" << threads;
    EXPECT_EQ(parallel.brmse, serial.brmse) << "threads=" << threads;
    EXPECT_EQ(parallel.auc, serial.auc) << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, ShardedFitBitwiseAcrossRepeatRuns) {
  core::RrreConfig config = SmallConfig();
  config.shard_size = 4;
  const FitResult first = RunFit(config, 4);
  const FitResult second = RunFit(config, 4);
  EXPECT_EQ(first.losses, second.losses);
  EXPECT_EQ(first.params, second.params);
  EXPECT_EQ(first.ratings, second.ratings);
  EXPECT_EQ(first.reliabilities, second.reliabilities);
}

TEST_F(ParallelDeterminismTest, ShardedFitMatchesWholeBatchPath) {
  // One epoch: the sharded path consumes the trainer rng differently (one
  // fork per batch), so multi-epoch shuffles would diverge by design; within
  // an epoch the objective decomposition is exact and only float summation
  // order differs.
  core::RrreConfig serial_config = SmallConfig();
  serial_config.shard_size = 0;
  const FitResult serial = RunFit(serial_config, 1);

  core::RrreConfig sharded_config = SmallConfig();
  sharded_config.shard_size = 4;
  const FitResult sharded = RunFit(sharded_config, 4);

  ASSERT_EQ(serial.losses.size(), sharded.losses.size());
  for (size_t i = 0; i < serial.losses.size(); ++i) {
    EXPECT_NEAR(serial.losses[i], sharded.losses[i], 1e-6);
  }
  ASSERT_EQ(serial.params.size(), sharded.params.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < serial.params.size(); ++i) {
    max_diff = std::max(
        max_diff,
        static_cast<double>(std::fabs(serial.params[i] - sharded.params[i])));
  }
  // Per-parameter tolerance is looser than the loss/metric ones: Adam's
  // first-step update is ~lr*sign(g), so for coordinates whose gradient is
  // at rounding-noise level the two summation orders can disagree on the
  // sign and move a full step apart. Thread-count invariance (the
  // determinism contract) is bitwise — see the tests above; this one only
  // checks the objective decomposition across *math paths*.
  EXPECT_LE(max_diff, 5e-4) << "max parameter divergence";
  ASSERT_EQ(serial.ratings.size(), sharded.ratings.size());
  for (size_t i = 0; i < serial.ratings.size(); ++i) {
    EXPECT_NEAR(serial.ratings[i], sharded.ratings[i], 1e-5);
    EXPECT_NEAR(serial.reliabilities[i], sharded.reliabilities[i], 1e-5);
  }
  EXPECT_NEAR(serial.brmse, sharded.brmse, 1e-5);
  EXPECT_NEAR(serial.auc, sharded.auc, 1e-5);
}

TEST_F(ParallelDeterminismTest, ShardedFitBitwiseAcrossThreadCountsEager) {
  // Same contract as ShardedFitBitwiseAcrossThreadCounts but on the eager
  // (tape-off) path, so a regression in either executor is caught on its own.
  core::RrreConfig config = SmallConfig();
  config.epochs = 2;
  config.shard_size = 4;
  config.use_tape = false;
  const FitResult serial = RunFit(config, 1);
  for (int threads : {2, 4}) {
    const FitResult parallel = RunFit(config, threads);
    EXPECT_EQ(parallel.losses, serial.losses) << "threads=" << threads;
    EXPECT_EQ(parallel.params, serial.params) << "threads=" << threads;
    EXPECT_EQ(parallel.ratings, serial.ratings) << "threads=" << threads;
    EXPECT_EQ(parallel.reliabilities, serial.reliabilities)
        << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, TapeMatchesEagerAcrossThreadCounts) {
  // The strongest cross-executor claim: taped+fused training at any thread
  // count is bitwise identical to eager serial training, on both the
  // whole-batch and sharded paths.
  for (int64_t shard : {int64_t{0}, int64_t{4}}) {
    core::RrreConfig eager_config = SmallConfig();
    eager_config.shard_size = shard;
    eager_config.use_tape = false;
    const FitResult eager = RunFit(eager_config, 1);
    core::RrreConfig taped_config = eager_config;
    taped_config.use_tape = true;
    for (int threads : {1, 4}) {
      const FitResult taped = RunFit(taped_config, threads);
      EXPECT_EQ(taped.losses, eager.losses)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(taped.params, eager.params)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(taped.ratings, eager.ratings)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(taped.reliabilities, eager.reliabilities)
          << "shard=" << shard << " threads=" << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, UnevenShardSplitStaysExact) {
  // batch 16 with shard_size 5 -> shards of 5, 5, 5, 1.
  core::RrreConfig config = SmallConfig();
  config.shard_size = 5;
  const FitResult a = RunFit(config, 1);
  const FitResult b = RunFit(config, 4);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_EQ(a.params, b.params);
}

// ---------------------------------------------------------------------------
// Checkpoint-level: a run interrupted by Save + Load + Resume is bitwise
// identical to one that was never interrupted — the checkpoint captures the
// optimizer moments, step count and RNG state exactly.
// ---------------------------------------------------------------------------

std::vector<float> FlattenParams(const core::RrreTrainer& trainer) {
  std::vector<float> params;
  for (const Tensor& p : trainer.model().Parameters()) {
    const std::vector<float> v = p.ToVector();
    params.insert(params.end(), v.begin(), v.end());
  }
  return params;
}

void RemoveCheckpoint(const std::string& prefix) {
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(ParallelDeterminismTest, KillThenResumeIsBitwiseIdentical) {
  ThreadPool::SetGlobalSize(2);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 4;

  // Reference: 4 uninterrupted epochs.
  std::vector<double> straight_losses;
  core::RrreTrainer straight(config);
  straight.Fit(corpus, [&](const core::RrreTrainer::EpochStats& s) {
    straight_losses.push_back(s.loss);
  });
  ASSERT_EQ(straight_losses.size(), 4u);

  // "Killed" run: train 2 epochs, checkpoint, then restore into a fresh
  // trainer (simulating a new process) and Resume the remaining two.
  const std::string prefix = ::testing::TempDir() + "/resume_ckpt";
  std::vector<double> resumed_losses;
  {
    core::RrreConfig half = config;
    half.epochs = 2;
    core::RrreTrainer first(half);
    first.Fit(corpus, [&](const core::RrreTrainer::EpochStats& s) {
      resumed_losses.push_back(s.loss);
    });
    ASSERT_TRUE(first.Save(prefix).ok());
  }
  core::RrreTrainer resumed(config);  // Full-length schedule this time.
  ASSERT_TRUE(resumed.Load(prefix).ok());
  EXPECT_EQ(resumed.epochs_completed(), 2);
  ASSERT_TRUE(resumed
                  .Resume([&](const core::RrreTrainer::EpochStats& s) {
                    resumed_losses.push_back(s.loss);
                  })
                  .ok());
  EXPECT_EQ(resumed.epochs_completed(), 4);

  // Bitwise: per-epoch losses, every parameter, and downstream predictions.
  EXPECT_EQ(resumed_losses, straight_losses);
  EXPECT_EQ(FlattenParams(resumed), FlattenParams(straight));
  const auto expect = straight.PredictDataset(corpus);
  const auto actual = resumed.PredictDataset(corpus);
  EXPECT_EQ(actual.ratings, expect.ratings);
  EXPECT_EQ(actual.reliabilities, expect.reliabilities);
  RemoveCheckpoint(prefix);
}

TEST_F(ParallelDeterminismTest, ResumeIsExactAtEveryInterruptionPoint) {
  // Interrupt after each possible epoch boundary; every resume must land on
  // the same final parameters.
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 3;
  core::RrreTrainer straight(config);
  straight.Fit(corpus);
  const std::vector<float> want = FlattenParams(straight);

  const std::string prefix = ::testing::TempDir() + "/resume_pt_ckpt";
  for (int64_t stop = 1; stop < config.epochs; ++stop) {
    core::RrreConfig partial = config;
    partial.epochs = stop;
    core::RrreTrainer first(partial);
    first.Fit(corpus);
    ASSERT_TRUE(first.Save(prefix).ok());
    core::RrreTrainer resumed(config);
    ASSERT_TRUE(resumed.Load(prefix).ok());
    ASSERT_TRUE(resumed.Resume().ok());
    EXPECT_EQ(FlattenParams(resumed), want) << "interrupted after " << stop;
    RemoveCheckpoint(prefix);
  }
}

TEST_F(ParallelDeterminismTest, ResumeAfterAllEpochsIsANoOp) {
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();  // epochs = 1
  core::RrreTrainer trainer(config);
  trainer.Fit(corpus);
  const std::string prefix = ::testing::TempDir() + "/resume_noop_ckpt";
  ASSERT_TRUE(trainer.Save(prefix).ok());
  core::RrreTrainer resumed(config);
  ASSERT_TRUE(resumed.Load(prefix).ok());
  const std::vector<float> before = FlattenParams(resumed);
  int callbacks = 0;
  ASSERT_TRUE(
      resumed.Resume([&](const core::RrreTrainer::EpochStats&) { ++callbacks; })
          .ok());
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(FlattenParams(resumed), before);
  RemoveCheckpoint(prefix);
}

TEST_F(ParallelDeterminismTest, ResumeIsThreadCountInvariant) {
  // Save on 1 thread, resume on 4 — still bitwise equal to the straight run.
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 2;
  config.shard_size = 4;
  ThreadPool::SetGlobalSize(1);
  core::RrreTrainer straight(config);
  straight.Fit(corpus);

  const std::string prefix = ::testing::TempDir() + "/resume_threads_ckpt";
  core::RrreConfig half = config;
  half.epochs = 1;
  core::RrreTrainer first(half);
  first.Fit(corpus);
  ASSERT_TRUE(first.Save(prefix).ok());

  ThreadPool::SetGlobalSize(4);
  core::RrreTrainer resumed(config);
  ASSERT_TRUE(resumed.Load(prefix).ok());
  ASSERT_TRUE(resumed.Resume().ok());
  EXPECT_EQ(FlattenParams(resumed), FlattenParams(straight));
  RemoveCheckpoint(prefix);
}

}  // namespace
}  // namespace rrre
