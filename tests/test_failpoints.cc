// Fault-injection tests built on the common/failpoint framework: the
// framework's trigger schedules themselves, crash-safe AtomicFileWriter
// commits, torn-checkpoint rejection, socket faults (short I/O, EINTR
// storms, resets, deadlines), loadgen retry backoff, hot-reload failure
// isolation, peer resets against a live server, and a seeded randomized
// fault-schedule soak. The suite runs under AddressSanitizer in
// tools/check.sh (`ctest -L failpoint`).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/scorer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace rrre {
namespace {

namespace failpoint = common::failpoint;

using common::Rng;
using common::Socket;
using common::Status;

/// Every test leaves the process-global registry clean so suites cannot
/// leak armed points into each other.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Framework: trigger schedules, spec parsing, counters
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, DisarmedPointsNeverFire) {
  EXPECT_FALSE(failpoint::Enabled());
  EXPECT_FALSE(failpoint::Check("no.such.point").has_value());
  EXPECT_TRUE(failpoint::MaybeError("no.such.point", "op").ok());
  EXPECT_EQ(failpoint::AllowedBytes("no.such.point", 1024), 1024u);
  EXPECT_EQ(failpoint::EvalCount("no.such.point"), 0);
  EXPECT_EQ(failpoint::FireCount("no.such.point"), 0);
}

TEST_F(FailpointTest, ArmAndDisarmToggleTheFastPath) {
  failpoint::Arm("t.enabled");
  EXPECT_TRUE(failpoint::Enabled());
  EXPECT_EQ(failpoint::ArmedPoints(), std::vector<std::string>{"t.enabled"});
  failpoint::Disarm("t.enabled");
  EXPECT_FALSE(failpoint::Enabled());
  EXPECT_TRUE(failpoint::ArmedPoints().empty());
}

TEST_F(FailpointTest, AfterAndCountMakeADeterministicWindow) {
  failpoint::Config config;
  config.after = 2;
  config.count = 2;
  failpoint::Arm("t.window", config);
  // Evaluations 0,1 are skipped; 2,3 fire; 4,5 are past the count budget.
  for (int i = 0; i < 6; ++i) {
    const bool fired = failpoint::Check("t.window").has_value();
    EXPECT_EQ(fired, i == 2 || i == 3) << "evaluation " << i;
  }
  EXPECT_EQ(failpoint::EvalCount("t.window"), 6);
  EXPECT_EQ(failpoint::FireCount("t.window"), 2);
}

TEST_F(FailpointTest, ProbabilisticScheduleReplaysExactlyFromSeed) {
  failpoint::Config config;
  config.prob = 0.5;
  config.seed = 0xdecaf;
  auto draw_pattern = [&config]() {
    failpoint::Arm("t.prob", config);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(failpoint::Check("t.prob").has_value());
    }
    return pattern;
  };
  const std::vector<bool> first = draw_pattern();
  const std::vector<bool> replay = draw_pattern();
  EXPECT_EQ(first, replay);  // Re-arming with the same seed replays exactly.
  const int64_t fires = failpoint::FireCount("t.prob");
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 200);
  config.seed = 0xdecaf + 1;
  EXPECT_NE(first, draw_pattern());  // A different seed is a different run.
}

TEST_F(FailpointTest, ShortIoActionCarriesItsByteBudget) {
  failpoint::Config config;
  config.action = failpoint::Action::kShortIo;
  config.arg = 64;
  failpoint::Arm("t.short", config);
  const auto fired = failpoint::Check("t.short");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, failpoint::Action::kShortIo);
  EXPECT_EQ(fired->arg, 64);
}

TEST_F(FailpointTest, MaybeErrorNamesThePointAndOperation) {
  failpoint::Arm("t.err");  // Default action: kError.
  const Status status = failpoint::MaybeError("t.err", "write /dev/null");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("t.err"), std::string::npos);
  EXPECT_NE(status.ToString().find("write /dev/null"), std::string::npos);
  failpoint::Disarm("t.err");
  EXPECT_TRUE(failpoint::MaybeError("t.err", "write /dev/null").ok());
}

TEST_F(FailpointTest, DelayActionSleepsThenProceeds) {
  failpoint::Config config;
  config.action = failpoint::Action::kDelayUs;
  config.arg = 2000;
  failpoint::Arm("t.delay", config);
  common::Timer timer;
  EXPECT_TRUE(failpoint::MaybeError("t.delay", "op").ok());
  EXPECT_GE(timer.ElapsedSeconds(), 0.0015);
}

TEST_F(FailpointTest, AllowedBytesClampsOnlyWhileFiring) {
  failpoint::Config config;
  config.action = failpoint::Action::kShortIo;
  config.arg = 3;
  config.count = 1;
  failpoint::Arm("t.bytes", config);
  EXPECT_EQ(failpoint::AllowedBytes("t.bytes", 10), 3u);
  EXPECT_EQ(failpoint::AllowedBytes("t.bytes", 10), 10u);  // Budget spent.
}

TEST_F(FailpointTest, ArmFromSpecParsesTheFullGrammar) {
  ASSERT_TRUE(failpoint::ArmFromSpec("a.one:short=64,after=3,count=2;"
                                     "b.two:delay=5;"
                                     "c.three")
                  .ok());
  const std::vector<std::string> expected = {"a.one", "b.two", "c.three"};
  EXPECT_EQ(failpoint::ArmedPoints(), expected);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(failpoint::Check("a.one").has_value()) << "after=" << i;
  }
  const auto fired = failpoint::Check("a.one");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, failpoint::Action::kShortIo);
  EXPECT_EQ(fired->arg, 64);
  // Bare point name: default config, fires immediately with kError.
  const auto bare = failpoint::Check("c.three");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->action, failpoint::Action::kError);
}

TEST_F(FailpointTest, MalformedSpecsArmNothing) {
  for (const char* spec :
       {"p:prob=2", "p:after=-1", "p:short=abc", "p:bogus", ":error",
        "p:prob="}) {
    EXPECT_FALSE(failpoint::ArmFromSpec(spec).ok()) << spec;
    EXPECT_TRUE(failpoint::ArmedPoints().empty()) << spec;
  }
  // All-or-nothing: one bad entry poisons the whole spec.
  EXPECT_FALSE(failpoint::ArmFromSpec("good.point:error;p:prob=2").ok());
  EXPECT_TRUE(failpoint::ArmedPoints().empty());
}

// The env-spec tests are deliberately fixture-free: a threadsafe death-test
// child re-runs the whole test (including fixture SetUp), and any failpoint
// call before the death statement would initialize the registry early.
TEST(FailpointEnvTest, EnvironmentSpecArmsAtStartup) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Threadsafe death tests re-execute the binary, so the child's first
  // failpoint use parses RRRE_FAILPOINTS from scratch — the production
  // startup path, unreachable in-process once the registry exists.
  ASSERT_EQ(setenv("RRRE_FAILPOINTS", "env.point:delay=1,count=3", 1), 0);
  EXPECT_EXIT(
      {
        if (failpoint::Enabled() &&
            failpoint::ArmedPoints() ==
                std::vector<std::string>{"env.point"} &&
            failpoint::Check("env.point").has_value()) {
          std::exit(0);
        }
        std::exit(1);
      },
      ::testing::ExitedWithCode(0), "");
  ASSERT_EQ(unsetenv("RRRE_FAILPOINTS"), 0);
}

TEST(FailpointEnvTest, MalformedEnvironmentSpecIsFatalAtStartup) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_EQ(setenv("RRRE_FAILPOINTS", "bad.point:prob=2", 1), 0);
  EXPECT_DEATH(
      {
        failpoint::Enabled();  // First use parses the env spec and dies.
        std::exit(0);
      },
      "RRRE_FAILPOINTS");
  ASSERT_EQ(unsetenv("RRRE_FAILPOINTS"), 0);
}

// ---------------------------------------------------------------------------
// AtomicFileWriter: crash-safe commit sequence
// ---------------------------------------------------------------------------

class AtomicWriteTest : public FailpointTest {
 protected:
  static std::string Path() {
    // ctest runs every case as its own process, concurrently, so the target
    // must be unique per case. The test *name* (not the pid) keys it so a
    // threadsafe death-test child — a re-exec with a new pid — still shares
    // its parent's path.
    return ::testing::TempDir() + "/fp_atomic_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void SetUp() override {
    FailpointTest::SetUp();
    std::remove(Path().c_str());
    std::remove((Path() + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(Path().c_str());
    std::remove((Path() + ".tmp").c_str());
    FailpointTest::TearDown();
  }
};

TEST_F(AtomicWriteTest, CommitPublishesUnderTheFinalNameOnly) {
  ASSERT_TRUE(common::WriteFile(Path(), "old").ok());
  common::AtomicFileWriter writer;
  ASSERT_TRUE(writer.Open(Path()).ok());
  ASSERT_TRUE(writer.Append("new ").ok());
  // Mid-stream the target still reads as the old committed content.
  EXPECT_EQ(common::ReadFile(Path()).value(), "old");
  ASSERT_TRUE(writer.Append("content").ok());
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(common::ReadFile(Path()).value(), "new content");
  EXPECT_NE(::access((Path() + ".tmp").c_str(), F_OK), 0);  // Tmp is gone.
}

TEST_F(AtomicWriteTest, EveryFailingStageLeavesTheOldFileIntact) {
  for (const char* point : {"io.open", "io.write", "io.fsync", "io.rename"}) {
    ASSERT_TRUE(common::WriteFile(Path(), "old").ok()) << point;
    failpoint::Config error;
    error.count = 1;
    failpoint::Arm(point, error);
    const Status status = common::AtomicWriteFile(Path(), "NEW");
    EXPECT_FALSE(status.ok()) << point;
    EXPECT_NE(status.ToString().find(point), std::string::npos) << point;
    EXPECT_EQ(common::ReadFile(Path()).value(), "old") << point;
    // The failed attempt's tmp file was unlinked, not left to accumulate.
    EXPECT_NE(::access((Path() + ".tmp").c_str(), F_OK), 0) << point;
    failpoint::DisarmAll();
  }
}

TEST_F(AtomicWriteTest, ShortWriteTearsOnlyTheTmpFile) {
  ASSERT_TRUE(common::WriteFile(Path(), "old").ok());
  failpoint::Config torn;
  torn.action = failpoint::Action::kShortIo;
  torn.arg = 4;
  torn.count = 1;
  failpoint::Arm("io.write", torn);
  const Status status = common::AtomicWriteFile(Path(), "NEW CONTENT");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("short write"), std::string::npos);
  EXPECT_EQ(common::ReadFile(Path()).value(), "old");
  EXPECT_NE(::access((Path() + ".tmp").c_str(), F_OK), 0);
}

TEST_F(AtomicWriteTest, DirsyncFailureReportsAfterContentIsVisible) {
  // The rename has already happened when the directory sync fails: the new
  // content is visible (and will survive unless the machine dies), but the
  // caller is told durability was not established.
  ASSERT_TRUE(common::WriteFile(Path(), "old").ok());
  failpoint::Config error;
  error.count = 1;
  failpoint::Arm("io.dirsync", error);
  const Status status = common::AtomicWriteFile(Path(), "NEW");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(common::ReadFile(Path()).value(), "NEW");
  EXPECT_NE(::access((Path() + ".tmp").c_str(), F_OK), 0);
}

// ---------------------------------------------------------------------------
// Checkpoints: a save that dies can never tear the previous checkpoint
// ---------------------------------------------------------------------------

class CheckpointFaultTest : public FailpointTest {
 protected:
  static std::string Path() {
    // Test-name keyed for the same reason as AtomicWriteTest::Path: unique
    // across concurrent ctest processes, shared with death-test children.
    return ::testing::TempDir() + "/fp_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".bin";
  }

  static std::map<std::string, tensor::Tensor> TensorsA() {
    std::map<std::string, tensor::Tensor> t;
    t.emplace("w", tensor::Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
    t.emplace("b", tensor::Tensor::FromVector({4}, {9, 8, 7, 6}));
    return t;
  }
  static std::map<std::string, tensor::Tensor> TensorsB() {
    std::map<std::string, tensor::Tensor> t;
    t.emplace("w", tensor::Tensor::Full({2, 3}, -1.0f));
    t.emplace("b", tensor::Tensor::Full({4}, -2.0f));
    return t;
  }

  static void ExpectLoadsAsA() {
    auto loaded = tensor::LoadTensors(Path());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const auto a = TensorsA();
    ASSERT_EQ(loaded.value().size(), a.size());
    for (const auto& [name, expected] : a) {
      const tensor::Tensor& got = loaded.value().at(name);
      ASSERT_EQ(got.numel(), expected.numel()) << name;
      for (int64_t i = 0; i < expected.numel(); ++i) {
        EXPECT_EQ(got.at(i), expected.at(i)) << name << "[" << i << "]";
      }
    }
  }

  void SetUp() override {
    FailpointTest::SetUp();
    std::remove(Path().c_str());
    std::remove((Path() + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(Path().c_str());
    std::remove((Path() + ".tmp").c_str());
    FailpointTest::TearDown();
  }
};

TEST_F(CheckpointFaultTest, FailedResaveNeverTearsTheCheckpoint) {
  ASSERT_TRUE(tensor::SaveTensors(Path(), TensorsA()).ok());
  for (const char* point :
       {"ckpt.open", "ckpt.write", "ckpt.fsync", "ckpt.rename"}) {
    failpoint::Config error;
    error.count = 1;
    failpoint::Arm(point, error);
    EXPECT_FALSE(tensor::SaveTensors(Path(), TensorsB()).ok()) << point;
    failpoint::DisarmAll();
    ExpectLoadsAsA();  // The original checkpoint is untouched and loadable.
  }
}

TEST_F(CheckpointFaultTest, ShortWriteMidSaveLeavesOldCheckpointLoadable) {
  ASSERT_TRUE(tensor::SaveTensors(Path(), TensorsA()).ok());
  // Let a few header appends through, then tear a write: the torn bytes land
  // in the tmp file only.
  failpoint::Config torn;
  torn.action = failpoint::Action::kShortIo;
  torn.arg = 2;
  torn.after = 4;
  torn.count = 1;
  failpoint::Arm("ckpt.write", torn);
  EXPECT_FALSE(tensor::SaveTensors(Path(), TensorsB()).ok());
  failpoint::DisarmAll();
  EXPECT_NE(::access((Path() + ".tmp").c_str(), F_OK), 0);
  ExpectLoadsAsA();
}

TEST_F(CheckpointFaultTest, CrashMidSaveLeavesOldCheckpointLoadable) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_TRUE(tensor::SaveTensors(Path(), TensorsA()).ok());
  // Simulated power loss partway through writing the replacement: the child
  // process dies inside SaveTensors with no cleanup at all.
  EXPECT_EXIT(
      {
        failpoint::Config crash;
        crash.action = failpoint::Action::kCrash;
        crash.after = 5;
        failpoint::Arm("ckpt.write", crash);
        const Status status = tensor::SaveTensors(Path(), TensorsB());
        (void)status;  // Unreachable: the failpoint exits first.
        std::exit(1);
      },
      ::testing::ExitedWithCode(137), "");
  ExpectLoadsAsA();  // Only a stray tmp may exist; the checkpoint is whole.
}

TEST_F(CheckpointFaultTest, CrashAtRenameLeavesEitherOldOrNewNeverTorn) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_TRUE(tensor::SaveTensors(Path(), TensorsA()).ok());
  EXPECT_EXIT(
      {
        failpoint::Config crash;
        crash.action = failpoint::Action::kCrash;
        failpoint::Arm("ckpt.rename", crash);
        const Status status = tensor::SaveTensors(Path(), TensorsB());
        (void)status;
        std::exit(1);
      },
      ::testing::ExitedWithCode(137), "");
  // Crash before the rename: the old checkpoint must still be the one
  // visible under the final name, fully intact.
  ExpectLoadsAsA();
}

TEST_F(CheckpointFaultTest, TornArtifactIsRejectedByTheLoader) {
  ASSERT_TRUE(tensor::SaveTensors(Path(), TensorsA()).ok());
  auto bytes = common::ReadFile(Path());
  ASSERT_TRUE(bytes.ok());
  // Overwrite the checkpoint with a prefix of itself — what a non-atomic
  // writer interrupted mid-stream would have left under the final name.
  for (const size_t keep : {bytes.value().size() / 2, size_t{12}, size_t{3}}) {
    std::ofstream torn(Path(), std::ios::binary | std::ios::trunc);
    torn.write(bytes.value().data(), static_cast<std::streamsize>(keep));
    torn.close();
    auto loaded = tensor::LoadTensors(Path());
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes";
  }
}

// ---------------------------------------------------------------------------
// Sockets: short I/O, EINTR storms, resets, deadlines
// ---------------------------------------------------------------------------

struct LocalPair {
  Socket client;
  Socket server;
};

LocalPair MakeLocalPair() {
  auto listener = Socket::Listen(0);
  RRRE_CHECK_OK(listener.status());
  auto client = Socket::Connect("127.0.0.1", listener.value().local_port());
  RRRE_CHECK_OK(client.status());
  auto accepted = listener.value().AcceptWithTimeout(5000);
  RRRE_CHECK_OK(accepted.status());
  RRRE_CHECK(accepted.value().has_value()) << "accept timed out";
  return LocalPair{std::move(client).ValueOrDie(),
                   std::move(*accepted.value())};
}

TEST_F(FailpointTest, SendAllDeliversThroughShortSendsAndEintrStorm) {
  LocalPair pair = MakeLocalPair();
  // Every kernel send is clamped to 1 byte and EINTR hits 32 times: the
  // resume loop must still deliver the full payload byte-for-byte.
  ASSERT_TRUE(failpoint::ArmFromSpec("sock.send.short:short=1;"
                                     "sock.send.eintr:count=32")
                  .ok());
  Rng rng(5);
  std::string payload;
  for (int i = 0; i < 4096; ++i) {
    payload.push_back(static_cast<char>('a' + rng.UniformInt(26)));
  }
  std::thread sender(
      [&] { RRRE_CHECK_OK(pair.client.SendAll(payload)); });
  std::string received;
  char buf[512];
  while (received.size() < payload.size()) {
    auto n = pair.server.RecvSome(buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(n.value(), 0u);
    received.append(buf, n.value());
  }
  sender.join();
  EXPECT_EQ(received, payload);
  EXPECT_GE(failpoint::FireCount("sock.send.short"), 4096);
  EXPECT_EQ(failpoint::FireCount("sock.send.eintr"), 32);
}

TEST_F(FailpointTest, InjectedSendResetFailsTheWrite) {
  LocalPair pair = MakeLocalPair();
  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("sock.send.reset", once);
  const Status status = pair.client.SendAll("doomed\n");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("sock.send.reset"), std::string::npos);
  EXPECT_TRUE(pair.client.SendAll("fine\n").ok());  // Budget spent.
}

TEST_F(FailpointTest, LineReaderReassemblesUnderShortReadsAndEintr) {
  LocalPair pair = MakeLocalPair();
  ASSERT_TRUE(failpoint::ArmFromSpec("sock.recv.short:short=1;"
                                     "sock.recv.eintr:count=16")
                  .ok());
  ASSERT_TRUE(pair.server.SendAll("alpha\nbeta\r\ngamma").ok());
  pair.server.Close();  // "gamma" arrives as a final unterminated line.
  common::LineReader reader(&pair.client);
  for (const char* expected : {"alpha", "beta", "gamma"}) {
    auto line = reader.ReadLine();
    ASSERT_TRUE(line.ok());
    ASSERT_TRUE(line.value().has_value());
    EXPECT_EQ(*line.value(), expected);
  }
  auto eof = reader.ReadLine();
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value().has_value());
}

TEST_F(FailpointTest, InjectedRecvEagainSurfacesDeadlineExceeded) {
  LocalPair pair = MakeLocalPair();
  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("sock.recv.eagain", once);
  common::LineReader reader(&pair.client);
  auto line = reader.ReadLine();
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), common::StatusCode::kDeadlineExceeded);
  // The deadline consumed no data: the stream still works afterwards.
  ASSERT_TRUE(pair.server.SendAll("later\n").ok());
  auto next = reader.ReadLine();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next.value(), "later");
}

TEST_F(FailpointTest, RealReceiveDeadlineFiresOnASilentPeer) {
  LocalPair pair = MakeLocalPair();
  ASSERT_TRUE(pair.server.SetRecvTimeout(50).ok());
  common::LineReader reader(&pair.server);
  common::Timer timer;
  auto line = reader.ReadLine();  // Client sends nothing.
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), common::StatusCode::kDeadlineExceeded);
  EXPECT_GE(timer.ElapsedSeconds(), 0.04);
}

TEST_F(FailpointTest, PeerResetMidLineTerminatesTheReaderCleanly) {
  LocalPair pair = MakeLocalPair();
  ASSERT_TRUE(pair.client.SendAll("partial-line-without-newline").ok());
  pair.client.CloseWithReset();  // Real RST, not a FIN.
  // Depending on arrival order the reader sees the unterminated line, EOF,
  // or an I/O error — but it must settle within a bounded number of reads,
  // never hang or crash.
  common::LineReader reader(&pair.server);
  bool settled = false;
  for (int i = 0; i < 10 && !settled; ++i) {
    auto line = reader.ReadLine();
    settled = !line.ok() || !line.value().has_value();
  }
  EXPECT_TRUE(settled);
}

TEST_F(FailpointTest, SendAllReportsNeverSentVersusPartialProgress) {
  // The router's failover policy rests on SendAll's byte count: a failure
  // with zero progress means the request never left this host (safe to
  // retry any verb on a replica); partial progress means the peer may have
  // received and acted on it (only idempotent verbs may be blindly resent).
  LocalPair pair = MakeLocalPair();
  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("sock.send.reset", once);
  size_t sent = 12345;  // Poisoned: the failure path must still write it.
  Status status = pair.client.SendAll("RELOAD\n", &sent);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(sent, 0u) << "reset before the first send is the never-sent case";

  // Clamp each kernel send to 4 bytes and reset on the second loop pass:
  // the failure now happens with bytes already handed to the kernel.
  ASSERT_TRUE(failpoint::ArmFromSpec("sock.send.short:short=4;"
                                     "sock.send.reset:after=1,count=1")
                  .ok());
  sent = 0;
  status = pair.client.SendAll("0\t1\n0\t2\n0\t3\n", &sent);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(sent, 4u) << "partial progress is the maybe-delivered case";
  // What the count promises: exactly those bytes are on the wire.
  char buf[64];
  auto n = pair.server.RecvSome(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "0\t1\n");
  failpoint::DisarmAll();
  sent = 0;
  ASSERT_TRUE(pair.client.SendAll("PING\n", &sent).ok());
  EXPECT_EQ(sent, 5u);  // Success reports the full payload.
}

TEST_F(FailpointTest, PartialBytesFlagsATornResponseAfterAFailedRead) {
  // After a failed ReadLine, LineReader::partial_bytes() > 0 means the peer
  // started a response that was cut off mid-line — "torn", as opposed to
  // "never answered". The router treats the two exactly like SendAll's
  // never-sent/maybe-delivered split, from the read side.
  LocalPair pair = MakeLocalPair();
  ASSERT_TRUE(pair.server.SendAll("whole\ntor").ok());
  common::LineReader reader(&pair.client);
  auto line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line.value(), "whole");
  EXPECT_EQ(reader.partial_bytes(), 3u);  // "tor" buffered, no terminator.

  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("sock.recv.eagain", once);
  auto torn = reader.ReadLine();
  EXPECT_FALSE(torn.ok());
  EXPECT_GT(reader.partial_bytes(), 0u) << "the torn-response signal";

  // A deadline with an empty buffer is the never-answered case.
  common::LineReader fresh(&pair.server);
  failpoint::Arm("sock.recv.eagain", once);
  auto silent = fresh.ReadLine();
  EXPECT_FALSE(silent.ok());
  EXPECT_EQ(fresh.partial_bytes(), 0u);

  // The torn line completes once the rest arrives; nothing was lost.
  ASSERT_TRUE(pair.server.SendAll("n\n").ok());
  auto completed = reader.ReadLine();
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(*completed.value(), "torn");
  EXPECT_EQ(reader.partial_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Loadgen backoff
// ---------------------------------------------------------------------------

TEST(BackoffTest, WaitsStayInTheEqualJitterWindow) {
  Rng rng(7);
  for (int64_t attempt = 0; attempt < 24; ++attempt) {
    // Recompute the spec's ceiling: min(cap, base * 2^attempt).
    int64_t ceiling = 1000;
    for (int64_t k = 0; k < attempt && ceiling < 100000; ++k) {
      ceiling = std::min<int64_t>(100000, ceiling * 2);
    }
    const int64_t wait = serve::BackoffUs(attempt, 1000, 100000, rng);
    EXPECT_GE(wait, ceiling / 2) << attempt;
    EXPECT_LE(wait, ceiling) << attempt;
  }
}

TEST(BackoffTest, SequencesAreDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  std::vector<int64_t> wa, wb, wc;
  for (int64_t attempt = 0; attempt < 10; ++attempt) {
    wa.push_back(serve::BackoffUs(attempt, 500, 50000, a));
    wb.push_back(serve::BackoffUs(attempt, 500, 50000, b));
    wc.push_back(serve::BackoffUs(attempt, 500, 50000, c));
  }
  EXPECT_EQ(wa, wb);
  EXPECT_NE(wa, wc);
}

TEST(BackoffTest, DegenerateArgumentsAreClamped) {
  Rng rng(1);
  // Non-positive base behaves as base 1; a cap below the base is raised to
  // the base, and huge attempts cannot overflow past the cap.
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(serve::BackoffUs(0, 0, 0, rng), 0);
    const int64_t wait = serve::BackoffUs(62, 1000, 10, rng);
    EXPECT_GE(wait, 500);
    EXPECT_LE(wait, 1000);
  }
}

// ---------------------------------------------------------------------------
// Serving under faults: reload isolation, peer resets, retry, seeded soak
// ---------------------------------------------------------------------------

core::RrreConfig TinyConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

/// Minimal blocking line-protocol client (mirrors tests/test_served.cc).
class Client {
 public:
  explicit Client(uint16_t port) {
    auto socket = Socket::Connect("127.0.0.1", port);
    RRRE_CHECK_OK(socket.status());
    socket_ = std::move(socket).ValueOrDie();
    reader_ = std::make_unique<common::LineReader>(&socket_);
  }

  void Send(const std::string& data) { RRRE_CHECK_OK(socket_.SendAll(data)); }

  std::string MustReadLine() {
    auto line = reader_->ReadLine();
    RRRE_CHECK_OK(line.status());
    RRRE_CHECK(line.value().has_value()) << "unexpected EOF from server";
    return *line.value();
  }

  void Reset() { socket_.CloseWithReset(); }

 private:
  Socket socket_;
  std::unique_ptr<common::LineReader> reader_;
};

class FaultServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(17);
    corpus_ = new data::ReviewDataset(data::GenerateSyntheticDataset(
        data::YelpChiProfile(0.05), rng));
    core::RrreTrainer trainer(TinyConfig());
    trainer.Fit(*corpus_);
    // ctest runs every test as its own process, concurrently: the fixture
    // paths must be per-process or parallel tests race on the checkpoint.
    prefix_ = new std::string(::testing::TempDir() + "/fp_serve_ckpt_" +
                              std::to_string(::getpid()));
    ASSERT_TRUE(trainer.Save(*prefix_).ok());
    // The byte-exact reference is a trainer *loaded* from the checkpoint,
    // same as the server's, so float round-trips cancel out.
    ref_trainer_ = new core::RrreTrainer(TinyConfig());
    ASSERT_TRUE(ref_trainer_->Load(*prefix_).ok());
    ref_scorer_ = new core::BatchScorer(ref_trainer_);
  }

  static void TearDownTestSuite() {
    for (const char* suffix :
         {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
      std::remove((*prefix_ + suffix).c_str());
    }
    delete ref_scorer_;
    delete ref_trainer_;
    delete corpus_;
    delete prefix_;
    ref_scorer_ = nullptr;
    ref_trainer_ = nullptr;
    corpus_ = nullptr;
    prefix_ = nullptr;
  }

  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static serve::ServerOptions BaseOptions() {
    serve::ServerOptions options;
    options.config = TinyConfig();
    options.model_prefix = *prefix_;
    options.port = 0;
    return options;
  }

  static std::unique_ptr<serve::Server> StartServer(
      const serve::ServerOptions& options) {
    auto server = serve::Server::Start(options);
    RRRE_CHECK_OK(server.status());
    return std::move(server).ValueOrDie();
  }

  static std::string ExpectedScoreLine(int64_t user, int64_t item) {
    const auto preds = ref_scorer_->Score({{user, item}});
    std::string line = serve::FormatScoreLine(user, item, preds.ratings[0],
                                              preds.reliabilities[0]);
    line.pop_back();  // Clients strip the '\n'.
    return line;
  }

  /// Runs one synchronous reload and returns its reported status.
  static Status ReloadSync(serve::Server* server) {
    std::promise<Status> done;
    server->Reload([&done](const Status& status, int64_t /*generation*/) {
      done.set_value(status);
    });
    return done.get_future().get();
  }

  static data::ReviewDataset* corpus_;
  static core::RrreTrainer* ref_trainer_;
  static core::BatchScorer* ref_scorer_;
  static std::string* prefix_;
};

data::ReviewDataset* FaultServeTest::corpus_ = nullptr;
core::RrreTrainer* FaultServeTest::ref_trainer_ = nullptr;
core::BatchScorer* FaultServeTest::ref_scorer_ = nullptr;
std::string* FaultServeTest::prefix_ = nullptr;

TEST_F(FaultServeTest, FailedReloadKeepsServingTheOldSnapshot) {
  auto server = StartServer(BaseOptions());
  Client client(server->port());
  client.Send("3\t1\n");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(3, 1));

  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("serve.reload", once);
  const Status failed = ReloadSync(server.get());
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("serve.reload"), std::string::npos);
  EXPECT_EQ(server->batcher().generation(), 0);  // No swap happened.

  // The old snapshot keeps answering, byte-identical to before the fault.
  client.Send("3\t1\n4\t2\n");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(3, 1));
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(4, 2));

  // With the fault cleared the same reload succeeds.
  EXPECT_TRUE(ReloadSync(server.get()).ok());
  EXPECT_EQ(server->batcher().generation(), 1);
  client.Send("3\t1\n");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(3, 1));
}

TEST_F(FaultServeTest, TowerCacheCountersReachTheMetricsExposition) {
  serve::ServerOptions options = BaseOptions();
  options.batcher.tower_cache_cap = 4;  // Clamped up to batch_size (16).
  auto server = StartServer(options);
  Client client(server->port());
  std::string wire;
  for (int64_t user = 0; user < 3; ++user) {
    wire += std::to_string(user) + "\t1\n";  // Repeats item 1: cache hits.
  }
  // Two separate round-trips: the second batch finds every profile already
  // cached (hits only count across Score calls — one batch dedups its ids).
  client.Send(wire);
  for (int i = 0; i < 3; ++i) client.MustReadLine();
  client.Send(wire);
  for (int i = 0; i < 3; ++i) client.MustReadLine();
  server->batcher().Drain();  // The last batch's counter mirror has landed.
  const std::string text = server->RenderMetricsText();
  auto metric = [&text](const std::string& name) {
    const size_t pos = text.find("\n" + name + " ");
    RRRE_CHECK(pos != std::string::npos) << "missing metric " << name;
    return std::atoll(text.c_str() + pos + 1 + name.size() + 1);
  };
  EXPECT_GT(metric("rrre_scorer_user_cache_misses_total"), 0);
  EXPECT_GT(metric("rrre_scorer_item_cache_hits_total"), 0);
  EXPECT_EQ(metric("rrre_scorer_user_cache_evictions_total") +
                metric("rrre_scorer_item_cache_evictions_total"),
            0);  // 3 users / 1 item never exceed the cap.
}

TEST_F(FaultServeTest, PeerResetMidPipelineDoesNotDisturbOtherConnections) {
  serve::ServerOptions options = BaseOptions();
  options.read_timeout_ms = 2000;  // Reset connections must not pin a drain.
  auto server = StartServer(options);

  // Client B opens first and stays polite throughout.
  Client polite(server->port());
  for (int round = 0; round < 3; ++round) {
    // A rude client pipelines requests and resets without reading a byte;
    // its responses hit a dead socket mid-write.
    Client rude(server->port());
    std::string burst;
    for (int64_t i = 0; i < 8; ++i) {
      burst += std::to_string(i) + "\t" + std::to_string(i % 3) + "\n";
    }
    rude.Send(burst + "0\t");  // Plus an unterminated partial line.
    rude.Reset();

    // The polite client's pipelined burst still gets every response, in
    // order, byte-identical to the reference model.
    polite.Send("1\t2\nPING\n2\t0\n");
    EXPECT_EQ(polite.MustReadLine(), ExpectedScoreLine(1, 2)) << round;
    EXPECT_EQ(polite.MustReadLine(), "#pong") << round;
    EXPECT_EQ(polite.MustReadLine(), ExpectedScoreLine(2, 0)) << round;
  }
  server->Shutdown();
  const serve::ServerStats stats = server->stats();
  EXPECT_GE(stats.connections_accepted, 4);
}

TEST_F(FaultServeTest, LoadgenRetriesThroughATransientOverload) {
  serve::ServerOptions options = BaseOptions();
  options.batcher.queue_capacity = 1;  // Any concurrency overflows the queue.
  auto server = StartServer(options);
  server->batcher().Pause();  // Admission stays open; nothing is scored.

  serve::LoadGenOptions load;
  load.port = server->port();
  load.connections = 2;
  load.total_requests = 40;
  load.seed = 9;
  load.num_users = corpus_->num_users();
  load.num_items = corpus_->num_items();
  load.max_retries = 200;
  load.backoff_base_us = 500;
  load.backoff_cap_us = 20000;

  auto future = std::async(std::launch::async,
                           [&load] { return serve::RunLoadGen(load); });
  // Resume only after admission control has demonstrably refused a request:
  // a refusal means some loadgen connection received "!ERR overload" and is
  // retrying, so `retried > 0` below is guaranteed rather than a race
  // against a wall-clock sleep (the old 100ms nap lost under `ctest -j`).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server->stats().batcher.rejected == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(server->stats().batcher.rejected, 0) << "loadgen never overflowed";
  server->batcher().Resume();
  auto report = future.get();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every request eventually scored; the pause forced at least one retry,
  // and no request ran out of retry budget.
  EXPECT_EQ(report.value().scored, 40);
  EXPECT_EQ(report.value().overloaded, 0);
  EXPECT_GT(report.value().retried, 0);
  EXPECT_EQ(report.value().sent,
            report.value().scored + report.value().retried);
}

TEST_F(FaultServeTest, LoadgenAccountsExhaustedRetriesAsOverloadsNotErrors) {
  // A request that is still refused after its final retry must settle as
  // `overloaded` — never as a transport/`errors` count — and the attempt
  // accounting must add up exactly:
  //   sent == scored + overloaded + errors + retried.
  // Setup: a paused batcher whose single queue slot is pinned by a side
  // client, so every loadgen attempt deterministically answers overload.
  serve::ServerOptions options = BaseOptions();
  options.batcher.queue_capacity = 1;
  options.batcher.start_paused = true;
  auto server = StartServer(options);

  Client pin(server->port());
  pin.Send("0\t0\n");  // Occupies the only queue slot until Resume.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server->stats().batcher.submitted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server->stats().batcher.submitted, 1);

  serve::LoadGenOptions load;
  load.port = server->port();
  load.connections = 1;
  load.total_requests = 5;
  load.seed = 11;
  load.num_users = corpus_->num_users();
  load.num_items = corpus_->num_items();
  load.max_retries = 2;
  load.backoff_base_us = 200;
  load.backoff_cap_us = 1000;
  auto report = serve::RunLoadGen(load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const serve::LoadGenReport& r = report.value();
  EXPECT_EQ(r.scored, 0);
  EXPECT_EQ(r.overloaded, 5);   // One per request, after the final retry.
  EXPECT_EQ(r.errors, 0);       // Overload exhaustion is not an error.
  EXPECT_EQ(r.retried, 10);     // max_retries re-sends per request.
  EXPECT_EQ(r.sent, 15);        // 5 requests x (1 first try + 2 retries).
  EXPECT_EQ(r.sent, r.scored + r.overloaded + r.errors + r.retried);

  server->batcher().Resume();  // Unpin the side client so the drain is clean.
  EXPECT_EQ(pin.MustReadLine(), ExpectedScoreLine(0, 0));
}

TEST_F(FaultServeTest, SeededFaultScheduleSoak) {
  // The capstone: a randomized fault schedule — replayable from kSoakSeed
  // plus the per-point seeds below — thrown at a live server with a capped
  // tower cache. Invariants asserted throughout:
  //   1. the server never crashes or wedges,
  //   2. every score response is byte-identical to the reference model
  //      (never a torn or half-reloaded snapshot),
  //   3. failed reloads leave the old snapshot serving,
  //   4. after DisarmAll a clean client sees a fully healthy server.
  constexpr uint64_t kSoakSeed = 0xfa17;
  serve::ServerOptions options = BaseOptions();
  options.batcher.tower_cache_cap = 8;  // Clamped to 16: heavy eviction.
  options.batcher.queue_capacity = 64;
  options.read_timeout_ms = 2000;
  auto server = StartServer(options);

  // Socket-level faults that degrade but never sever: every send/recv in
  // the process (client and server side alike) randomly shrinks to 1 byte
  // or takes EINTR storms, according to per-point seeded schedules.
  ASSERT_TRUE(failpoint::ArmFromSpec("sock.send.short:short=1,prob=0.2,seed=101;"
                                     "sock.recv.short:short=1,prob=0.2,seed=202;"
                                     "sock.send.eintr:prob=0.1,seed=303;"
                                     "sock.recv.eintr:prob=0.1,seed=404")
                  .ok());

  Rng soak(kSoakSeed);
  const int64_t num_users = corpus_->num_users();
  const int64_t num_items = corpus_->num_items();
  int64_t failed_reloads = 0;
  for (int round = 0; round < 12; ++round) {
    if (soak.Bernoulli(0.4)) {
      // A rude client: pipelined burst, maybe a partial line, then RST.
      Client rude(server->port());
      std::string burst;
      const int64_t k = 1 + static_cast<int64_t>(soak.UniformInt(4));
      for (int64_t i = 0; i < k; ++i) {
        burst += std::to_string(soak.UniformInt(
                     static_cast<uint64_t>(num_users))) +
                 "\t" +
                 std::to_string(soak.UniformInt(
                     static_cast<uint64_t>(num_items))) +
                 "\n";
      }
      if (soak.Bernoulli(0.5)) burst += "7\t";  // Unterminated tail.
      rude.Send(burst);
      rude.Reset();
    }
    if (soak.Bernoulli(0.4)) {
      // A reload that dies at the serve.reload seam: reported as an error,
      // snapshot generation unchanged.
      failpoint::Config once;
      once.count = 1;
      failpoint::Arm("serve.reload", once);
      EXPECT_FALSE(ReloadSync(server.get()).ok()) << "round " << round;
      failpoint::Disarm("serve.reload");
      ++failed_reloads;
      EXPECT_EQ(server->batcher().generation(), 0) << "round " << round;
    }
    // A well-behaved client drives real traffic through the degraded
    // sockets and checks every response byte-for-byte.
    Client client(server->port());
    const int64_t k = 1 + static_cast<int64_t>(soak.UniformInt(6));
    std::vector<std::pair<int64_t, int64_t>> pairs;
    std::string wire;
    for (int64_t i = 0; i < k; ++i) {
      const int64_t user = static_cast<int64_t>(
          soak.UniformInt(static_cast<uint64_t>(num_users)));
      const int64_t item = static_cast<int64_t>(
          soak.UniformInt(static_cast<uint64_t>(num_items)));
      pairs.emplace_back(user, item);
      wire += std::to_string(user) + "\t" + std::to_string(item) + "\n";
    }
    client.Send(wire);
    for (size_t i = 0; i < pairs.size(); ++i) {
      const std::string line = client.MustReadLine();
      if (serve::IsOverloadLine(line)) continue;  // Clean shedding is legal.
      EXPECT_EQ(line, ExpectedScoreLine(pairs[i].first, pairs[i].second))
          << "round " << round << " request " << i;
    }
  }
  EXPECT_GT(failed_reloads, 0);  // The schedule exercised the reload seam.

  // Faults off: the same server, never restarted, is fully healthy.
  failpoint::DisarmAll();
  Client clean(server->port());
  clean.Send("1\t1\nPING\n");
  EXPECT_EQ(clean.MustReadLine(), ExpectedScoreLine(1, 1));
  EXPECT_EQ(clean.MustReadLine(), "#pong");
  EXPECT_EQ(server->batcher().generation(), 0);
  server->Shutdown();
  EXPECT_GT(server->stats().requests, 0);
}

}  // namespace
}  // namespace rrre
