// Tests of the batch serving layer behind tools/rrre_serve: request parsing,
// the checkpoint -> BatchScorer -> TSV pipeline, and its exactness against
// RrreTrainer::PredictPairs on the same checkpoint.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/rng.h"
#include "core/serving.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace rrre::core {
namespace {

using common::Rng;

RrreConfig TinyConfig() {
  RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

/// One fitted + checkpointed trainer shared by the suite (fitting is the
/// expensive part). The checkpoint lives under TempDir for all tests.
class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(27);
    corpus_ = new data::ReviewDataset(
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng));
    trainer_ = new RrreTrainer(TinyConfig());
    trainer_->Fit(*corpus_);
    // ctest runs every test as its own process, concurrently: the fixture
    // paths must be per-process or parallel tests race on the checkpoint.
    prefix_ = new std::string(::testing::TempDir() + "/serving_ckpt_" +
                              std::to_string(::getpid()));
    ASSERT_TRUE(trainer_->Save(*prefix_).ok());
  }

  static void TearDownTestSuite() {
    for (const char* suffix :
         {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
      std::remove((*prefix_ + suffix).c_str());
    }
    delete trainer_;
    delete corpus_;
    delete prefix_;
    trainer_ = nullptr;
    corpus_ = nullptr;
    prefix_ = nullptr;
  }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  static void WriteRequests(const std::string& path,
                            const std::string& content) {
    ASSERT_TRUE(common::WriteFile(path, content).ok());
  }

  static data::ReviewDataset* corpus_;
  static RrreTrainer* trainer_;
  static std::string* prefix_;
};

data::ReviewDataset* ServingTest::corpus_ = nullptr;
RrreTrainer* ServingTest::trainer_ = nullptr;
std::string* ServingTest::prefix_ = nullptr;

TEST_F(ServingTest, ServeMatchesPredictPairsOnSameCheckpoint) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::string requests = "user\titem\n";
  for (int64_t i = 0; i < 30; ++i) {
    const data::Review& r = corpus_->review((i * 7) % corpus_->size());
    pairs.emplace_back(r.user, r.item);
    requests += std::to_string(r.user) + "\t" + std::to_string(r.item) + "\n";
  }
  const std::string in = TempPath("serve_req.tsv");
  const std::string out = TempPath("serve_out.tsv");
  WriteRequests(in, requests);

  ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = in;
  options.output_path = out;
  auto stats = LoadAndServe(TinyConfig(), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_requests, 30);
  EXPECT_EQ(stats.value().num_scored, 30);

  // Reference: the full per-pair pipeline on a trainer restored from the
  // same checkpoint.
  RrreTrainer restored(TinyConfig());
  ASSERT_TRUE(restored.Load(*prefix_).ok());
  auto reference = restored.PredictPairs(pairs);

  auto rows = common::ReadTsv(out);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), pairs.size() + 1);  // Header + rows.
  EXPECT_EQ(rows.value()[0],
            (std::vector<std::string>{"user", "item", "rating",
                                      "reliability"}));
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& row = rows.value()[i + 1];
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(std::stoll(row[0]), pairs[i].first);
    EXPECT_EQ(std::stoll(row[1]), pairs[i].second);
    EXPECT_NEAR(std::atof(row[2].c_str()), reference.ratings[i], 2e-4) << i;
    EXPECT_NEAR(std::atof(row[3].c_str()), reference.reliabilities[i], 2e-5)
        << i;
  }
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST_F(ServingTest, ServeIsDeterministicAcrossRuns) {
  const std::string in = TempPath("serve_det_req.tsv");
  WriteRequests(in, "0\t1\n2\t3\n4\t5\n0\t1\n");
  ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = in;
  ServeOptions second = options;
  options.output_path = TempPath("serve_det_a.tsv");
  second.output_path = TempPath("serve_det_b.tsv");
  ASSERT_TRUE(LoadAndServe(TinyConfig(), options).ok());
  ASSERT_TRUE(LoadAndServe(TinyConfig(), second).ok());
  auto a = common::ReadFile(options.output_path);
  auto b = common::ReadFile(second.output_path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // Byte-identical scores, full precision.
  std::remove(in.c_str());
  std::remove(options.output_path.c_str());
  std::remove(second.output_path.c_str());
}

TEST_F(ServingTest, CatalogModeScoresEveryItem) {
  const std::string in = TempPath("serve_cat_req.tsv");
  const std::string out = TempPath("serve_cat_out.tsv");
  WriteRequests(in, "user\n3\n5\n");
  ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = in;
  options.output_path = out;
  options.catalog = true;
  auto stats = LoadAndServe(TinyConfig(), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_requests, 2);
  EXPECT_EQ(stats.value().num_scored, 2 * corpus_->num_items());
  EXPECT_EQ(stats.value().items_primed, corpus_->num_items());
  EXPECT_EQ(stats.value().users_primed, 2);
  auto rows = common::ReadTsv(out);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(static_cast<int64_t>(rows.value().size()),
            2 * corpus_->num_items() + 1);
  // First block is user 3 against items 0..n-1 in order.
  EXPECT_EQ(rows.value()[1][0], "3");
  EXPECT_EQ(rows.value()[1][1], "0");
  EXPECT_EQ(rows.value()[static_cast<size_t>(corpus_->num_items())][1],
            std::to_string(corpus_->num_items() - 1));
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST_F(ServingTest, SkipsHeaderAndComments) {
  const int64_t num_users = corpus_->num_users();
  const int64_t num_items = corpus_->num_items();
  const std::string in = TempPath("serve_hdr_req.tsv");
  WriteRequests(in, "user\titem\n# a comment line\n1\t2\n");
  int64_t requests = 0;
  auto pairs = ReadScoreRequests(in, /*catalog=*/false, num_users, num_items,
                                 &requests);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(requests, 1);
  ASSERT_EQ(pairs.value().size(), 1u);
  EXPECT_EQ(pairs.value()[0], (std::pair<int64_t, int64_t>{1, 2}));
  std::remove(in.c_str());
}

TEST_F(ServingTest, RejectsMalformedRequests) {
  const int64_t num_users = corpus_->num_users();
  const int64_t num_items = corpus_->num_items();
  const std::string in = TempPath("serve_bad_req.tsv");

  struct Case {
    const char* content;
    const char* expect_substring;
  };
  // A valid first row, then the malformed line. (An unparsable first row
  // would be skipped as the conventional header.)
  const Case cases[] = {
      {"0\t1\t2\n", "expected 2 column(s)"},
      {"0\n", "expected 2 column(s)"},
      {"x\t1\n", "bad user id"},
      {"0\tx\n", "bad item id"},
      {"0\t3.5\n", "bad item id"},
      {"-1\t0\n", "out of range"},
      {"0\t999999\n", "out of range"},
  };
  for (const Case& c : cases) {
    WriteRequests(in, std::string("0\t1\n") + c.content);
    auto pairs = ReadScoreRequests(in, /*catalog=*/false, num_users,
                                   num_items);
    ASSERT_FALSE(pairs.ok()) << c.content;
    EXPECT_NE(pairs.status().message().find(c.expect_substring),
              std::string::npos)
        << "error was: " << pairs.status().ToString();
    // Errors carry the 1-based offending line number.
    EXPECT_NE(pairs.status().message().find(":2:"), std::string::npos)
        << pairs.status().ToString();
  }
  std::remove(in.c_str());
}

TEST_F(ServingTest, MissingCheckpointFails) {
  ServeOptions options;
  options.model_prefix = TempPath("no_such_ckpt");
  options.input_path = TempPath("unused.tsv");
  options.output_path = TempPath("unused_out.tsv");
  auto stats = LoadAndServe(TinyConfig(), options);
  EXPECT_FALSE(stats.ok());
}

TEST_F(ServingTest, MissingRequestFileFails) {
  ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = TempPath("definitely_missing_requests.tsv");
  options.output_path = TempPath("unused_out2.tsv");
  auto stats = LoadAndServe(TinyConfig(), options);
  EXPECT_FALSE(stats.ok());
}

TEST_F(ServingTest, AcceptsCrlfAndSkipsWhitespaceOnlyLines) {
  const int64_t num_users = corpus_->num_users();
  const int64_t num_items = corpus_->num_items();
  const std::string in = TempPath("serve_crlf_req.tsv");
  // CRLF terminators, blank lines, space-only and tab-only lines — all
  // accepted or skipped; only the two real requests survive.
  WriteRequests(in, "user\titem\r\n1\t2\r\n\r\n   \n\t\n3\t4\r\n");
  int64_t requests = 0;
  auto pairs = ReadScoreRequests(in, /*catalog=*/false, num_users, num_items,
                                 &requests);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(requests, 2);
  ASSERT_EQ(pairs.value().size(), 2u);
  EXPECT_EQ(pairs.value()[0], (std::pair<int64_t, int64_t>{1, 2}));
  EXPECT_EQ(pairs.value()[1], (std::pair<int64_t, int64_t>{3, 4}));
  std::remove(in.c_str());
}

TEST_F(ServingTest, EmptyRequestFileServesZeroPairs) {
  const std::string in = TempPath("serve_empty_req.tsv");
  const std::string out = TempPath("serve_empty_out.tsv");
  WriteRequests(in, "");
  ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = in;
  options.output_path = out;
  auto stats = LoadAndServe(TinyConfig(), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_requests, 0);
  EXPECT_EQ(stats.value().num_scored, 0);
  EXPECT_EQ(stats.value().num_batches, 0);
  auto text = common::ReadFile(out);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "user\titem\trating\treliability\n");
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST_F(ServingTest, HeaderOnlyCatalogFileIsZeroRequests) {
  const std::string in = TempPath("serve_hdr_only_req.tsv");
  WriteRequests(in, "user\n");
  int64_t requests = -1;
  auto pairs = ReadScoreRequests(in, /*catalog=*/true, corpus_->num_users(),
                                 corpus_->num_items(), &requests);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(requests, 0);
  EXPECT_TRUE(pairs.value().empty());
  std::remove(in.c_str());
}

TEST_F(ServingTest, IdBoundsAreExactlyExclusiveAtCorpusSize) {
  const int64_t num_users = corpus_->num_users();
  const int64_t num_items = corpus_->num_items();
  const std::string in = TempPath("serve_bounds_req.tsv");

  // The last valid ids are num_users-1 / num_items-1...
  WriteRequests(in, std::to_string(num_users - 1) + "\t" +
                        std::to_string(num_items - 1) + "\n");
  auto pairs = ReadScoreRequests(in, /*catalog=*/false, num_users, num_items);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs.value().size(), 1u);
  EXPECT_EQ(pairs.value()[0],
            (std::pair<int64_t, int64_t>{num_users - 1, num_items - 1}));

  // ...and exactly num_users / num_items are the first invalid ones.
  WriteRequests(in, std::to_string(num_users) + "\t0\n");
  auto bad_user =
      ReadScoreRequests(in, /*catalog=*/false, num_users, num_items);
  ASSERT_FALSE(bad_user.ok());
  EXPECT_NE(bad_user.status().message().find("out of range"),
            std::string::npos);

  WriteRequests(in, "0\t" + std::to_string(num_items) + "\n");
  auto bad_item =
      ReadScoreRequests(in, /*catalog=*/false, num_users, num_items);
  ASSERT_FALSE(bad_item.ok());
  EXPECT_NE(bad_item.status().message().find("out of range"),
            std::string::npos);
  std::remove(in.c_str());
}

TEST_F(ServingTest, ChunkedScoringIsByteIdenticalAndRecordsLatency) {
  // 30 requests at score_batch=8 -> 4 batches; chunking must not change a
  // single output byte versus one big batch, and the latency histogram must
  // have one sample per batch.
  std::string requests = "user\titem\n";
  for (int64_t i = 0; i < 30; ++i) {
    const data::Review& r = corpus_->review((i * 5) % corpus_->size());
    requests += std::to_string(r.user) + "\t" + std::to_string(r.item) + "\n";
  }
  const std::string in = TempPath("serve_chunk_req.tsv");
  WriteRequests(in, requests);

  ServeOptions chunked;
  chunked.model_prefix = *prefix_;
  chunked.input_path = in;
  chunked.output_path = TempPath("serve_chunk_a.tsv");
  chunked.score_batch = 8;
  ServeOptions single = chunked;
  single.output_path = TempPath("serve_chunk_b.tsv");
  single.score_batch = 0;

  auto chunked_stats = LoadAndServe(TinyConfig(), chunked);
  ASSERT_TRUE(chunked_stats.ok()) << chunked_stats.status().ToString();
  EXPECT_EQ(chunked_stats.value().num_batches, 4);  // ceil(30 / 8).
  EXPECT_EQ(chunked_stats.value().batch_latency_us.count(), 4);
  EXPECT_GT(chunked_stats.value().batch_latency_us.Percentile(50.0), 0.0);
  EXPECT_LE(chunked_stats.value().batch_latency_us.Percentile(50.0),
            chunked_stats.value().batch_latency_us.Percentile(99.0));

  auto single_stats = LoadAndServe(TinyConfig(), single);
  ASSERT_TRUE(single_stats.ok());
  EXPECT_EQ(single_stats.value().num_batches, 1);

  auto a = common::ReadFile(chunked.output_path);
  auto b = common::ReadFile(single.output_path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  std::remove(in.c_str());
  std::remove(chunked.output_path.c_str());
  std::remove(single.output_path.c_str());
}

}  // namespace
}  // namespace rrre::core
