#include <gtest/gtest.h>

#include <cmath>

#include "graph/mrf.h"

namespace rrre::graph {
namespace {

using Belief = PairwiseMrf::Belief;
using Potential = PairwiseMrf::Potential;

constexpr Potential kAttractive = {{{0.9, 0.1}, {0.1, 0.9}}};
constexpr Potential kRepulsive = {{{0.1, 0.9}, {0.9, 0.1}}};

TEST(MrfTest, SingleNodeBeliefIsPrior) {
  PairwiseMrf mrf;
  mrf.AddNode({0.3, 0.7});
  auto result = mrf.RunLoopyBp();
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.beliefs[0][0], 0.3, 1e-9);
  EXPECT_NEAR(result.beliefs[0][1], 0.7, 1e-9);
}

TEST(MrfTest, PriorsAreNormalizedOnAdd) {
  PairwiseMrf mrf;
  mrf.AddNode({3.0, 1.0});
  auto result = mrf.RunLoopyBp();
  EXPECT_NEAR(result.beliefs[0][0], 0.75, 1e-9);
}

TEST(MrfTest, BpExactOnChain) {
  // BP is exact on trees: compare against brute force on a 4-chain.
  PairwiseMrf mrf;
  int64_t a = mrf.AddNode({0.8, 0.2});
  int64_t b = mrf.AddNode({0.5, 0.5});
  int64_t c = mrf.AddNode({0.5, 0.5});
  int64_t d = mrf.AddNode({0.3, 0.7});
  mrf.AddEdge(a, b, kAttractive);
  mrf.AddEdge(b, c, kAttractive);
  mrf.AddEdge(c, d, kRepulsive);
  auto bp = mrf.RunLoopyBp(200, 0.0, 1e-10);
  auto exact = mrf.ExactMarginals();
  ASSERT_TRUE(bp.converged);
  for (size_t n = 0; n < exact.size(); ++n) {
    EXPECT_NEAR(bp.beliefs[n][0], exact[n][0], 1e-6) << "node " << n;
    EXPECT_NEAR(bp.beliefs[n][1], exact[n][1], 1e-6) << "node " << n;
  }
}

TEST(MrfTest, BpExactOnStar) {
  PairwiseMrf mrf;
  int64_t hub = mrf.AddNode({0.5, 0.5});
  for (int i = 0; i < 5; ++i) {
    int64_t leaf = mrf.AddNode(i % 2 == 0 ? Belief{0.9, 0.1}
                                          : Belief{0.4, 0.6});
    mrf.AddEdge(hub, leaf, kAttractive);
  }
  auto bp = mrf.RunLoopyBp(200, 0.0, 1e-10);
  auto exact = mrf.ExactMarginals();
  for (size_t n = 0; n < exact.size(); ++n) {
    EXPECT_NEAR(bp.beliefs[n][0], exact[n][0], 1e-6) << "node " << n;
  }
}

TEST(MrfTest, AttractiveEdgePropagatesEvidence) {
  PairwiseMrf mrf;
  int64_t known = mrf.AddNode({0.95, 0.05});
  int64_t unknown = mrf.AddNode({0.5, 0.5});
  mrf.AddEdge(known, unknown, kAttractive);
  auto result = mrf.RunLoopyBp();
  // The unknown node should lean toward state 0 like its neighbor.
  EXPECT_GT(result.beliefs[1][0], 0.7);
}

TEST(MrfTest, RepulsiveEdgeFlipsEvidence) {
  PairwiseMrf mrf;
  int64_t known = mrf.AddNode({0.95, 0.05});
  int64_t unknown = mrf.AddNode({0.5, 0.5});
  mrf.AddEdge(known, unknown, kRepulsive);
  auto result = mrf.RunLoopyBp();
  EXPECT_GT(result.beliefs[1][1], 0.7);
}

TEST(MrfTest, LoopyGraphStillConvergesReasonably) {
  // A frustrated 3-cycle with mixed potentials; loopy BP is approximate but
  // must converge with damping and produce normalized beliefs.
  PairwiseMrf mrf;
  int64_t a = mrf.AddNode({0.6, 0.4});
  int64_t b = mrf.AddNode({0.5, 0.5});
  int64_t c = mrf.AddNode({0.4, 0.6});
  mrf.AddEdge(a, b, kAttractive);
  mrf.AddEdge(b, c, kAttractive);
  mrf.AddEdge(c, a, kRepulsive);
  auto result = mrf.RunLoopyBp(500, 0.5, 1e-8);
  EXPECT_TRUE(result.converged);
  for (const auto& belief : result.beliefs) {
    EXPECT_NEAR(belief[0] + belief[1], 1.0, 1e-9);
    EXPECT_GE(belief[0], 0.0);
    EXPECT_GE(belief[1], 0.0);
  }
}

TEST(MrfTest, UniformPotentialLeavesPriorsUntouched) {
  PairwiseMrf mrf;
  int64_t a = mrf.AddNode({0.7, 0.3});
  int64_t b = mrf.AddNode({0.2, 0.8});
  mrf.AddEdge(a, b, Potential{{{1.0, 1.0}, {1.0, 1.0}}});
  auto result = mrf.RunLoopyBp();
  EXPECT_NEAR(result.beliefs[0][0], 0.7, 1e-9);
  EXPECT_NEAR(result.beliefs[1][0], 0.2, 1e-9);
}

TEST(MrfTest, ChainOfEvidenceDecaysWithDistance) {
  // Influence of strong evidence should weaken along a chain.
  PairwiseMrf mrf;
  std::vector<int64_t> nodes;
  nodes.push_back(mrf.AddNode({0.99, 0.01}));
  for (int i = 1; i < 5; ++i) {
    nodes.push_back(mrf.AddNode({0.5, 0.5}));
    mrf.AddEdge(nodes[static_cast<size_t>(i) - 1],
                nodes[static_cast<size_t>(i)], kAttractive);
  }
  auto result = mrf.RunLoopyBp(300, 0.0, 1e-10);
  for (size_t i = 1; i + 1 < nodes.size(); ++i) {
    EXPECT_GT(result.beliefs[i][0], result.beliefs[i + 1][0])
        << "influence must decay along the chain at node " << i;
  }
}

TEST(MrfTest, DeterministicAcrossRuns) {
  PairwiseMrf mrf;
  int64_t a = mrf.AddNode({0.6, 0.4});
  int64_t b = mrf.AddNode({0.5, 0.5});
  mrf.AddEdge(a, b, kAttractive);
  auto r1 = mrf.RunLoopyBp();
  auto r2 = mrf.RunLoopyBp();
  EXPECT_EQ(r1.beliefs[0][0], r2.beliefs[0][0]);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

}  // namespace
}  // namespace rrre::graph
