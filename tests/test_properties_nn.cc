// Property-style parameterized tests of the NN layer library: full-layer
// numerical gradient checks across a sweep of layer sizes, and training
// dynamics invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <tuple>

#include "common/rng.h"
#include "common/threadpool.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/fm.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace rrre::nn {
namespace {

using common::Rng;
using tensor::Tensor;

/// Central-difference check of every parameter of `module` against the
/// autograd gradients of scalar-valued `f`.
void CheckModuleGradients(Module& module, const std::function<Tensor()>& f,
                          float eps = 1e-2f, float tol = 3e-2f) {
  Tensor out = f();
  ASSERT_EQ(out.numel(), 1);
  out.Backward();
  for (auto& [name, p] : module.NamedParameters()) {
    const auto analytic = p.grad();
    Tensor param = p;
    for (int64_t i = 0; i < param.numel(); ++i) {
      const float orig = param.at(i);
      param.at(i) = orig + eps;
      const float up = f().item();
      param.at(i) = orig - eps;
      const float down = f().item();
      param.at(i) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[static_cast<size_t>(i)];
      const float scale = std::max({std::abs(a), std::abs(numeric), 1.0f});
      EXPECT_NEAR(a, numeric, tol * scale) << name << " entry " << i;
    }
  }
}

/// (batch, input dim, output/hidden dim, seed, num_threads)
using LayerShape = std::tuple<int64_t, int64_t, int64_t, uint64_t, int>;

class LayerGradCheckTest : public ::testing::TestWithParam<LayerShape> {
 protected:
  void SetUp() override {
    original_pool_size_ = common::ThreadPool::GlobalSize();
    common::ThreadPool::SetGlobalSize(std::get<4>(GetParam()));
  }
  void TearDown() override {
    common::ThreadPool::SetGlobalSize(original_pool_size_);
  }

  int64_t batch() const { return std::get<0>(GetParam()); }
  int64_t in() const { return std::get<1>(GetParam()); }
  int64_t out() const { return std::get<2>(GetParam()); }
  uint64_t seed() const { return std::get<3>(GetParam()); }

 private:
  int original_pool_size_ = 0;
};

TEST_P(LayerGradCheckTest, Linear) {
  Rng rng(seed());
  Linear layer(in(), out(), rng);
  Tensor x = Tensor::Randn({batch(), in()}, rng, 0.7f);
  CheckModuleGradients(layer, [&]() {
    return tensor::Sum(tensor::Square(layer.Forward(x)));
  });
}

TEST_P(LayerGradCheckTest, LstmCellStep) {
  Rng rng(seed());
  LstmCell cell(in(), out(), rng);
  Tensor x = Tensor::Randn({batch(), in()}, rng, 0.7f);
  CheckModuleGradients(cell, [&]() {
    auto st = cell.Step(x, cell.InitialState(batch()));
    return tensor::Sum(tensor::Square(tensor::ConcatCols({st.h, st.c})));
  });
}

TEST_P(LayerGradCheckTest, GruTwoSteps) {
  Rng rng(seed());
  GruCell cell(in(), out(), rng);
  Tensor x1 = Tensor::Randn({batch(), in()}, rng, 0.7f);
  Tensor x2 = Tensor::Randn({batch(), in()}, rng, 0.7f);
  CheckModuleGradients(cell, [&]() {
    Tensor h = cell.Step(x2, cell.Step(x1, cell.InitialState(batch())));
    return tensor::Sum(tensor::Square(h));
  });
}

TEST_P(LayerGradCheckTest, FactorizationMachine) {
  Rng rng(seed());
  FactorizationMachine fm(in(), out(), rng);
  Tensor x = Tensor::Randn({batch(), in()}, rng, 0.7f);
  CheckModuleGradients(fm, [&]() {
    return tensor::Sum(tensor::Square(fm.Forward(x)));
  });
}

TEST_P(LayerGradCheckTest, FraudAttentionPooling) {
  Rng rng(seed());
  const int64_t s = 3;
  FraudAttention att(in(), out(), out(), 5, rng);
  Tensor rev = Tensor::Randn({batch() * s, in()}, rng, 0.7f);
  Tensor eu = Tensor::Randn({batch() * s, out()}, rng, 0.7f);
  Tensor ei = Tensor::Randn({batch() * s, out()}, rng, 0.7f);
  CheckModuleGradients(att, [&]() {
    Tensor alphas = att.Forward(rev, eu, ei, s);
    return tensor::Sum(tensor::Square(tensor::WeightedPool(rev, alphas)));
  });
}

TEST_P(LayerGradCheckTest, EmbeddingThroughLinear) {
  Rng rng(seed());
  Embedding emb(8, in(), rng);
  Linear head(in(), out(), rng);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < batch(); ++i) ids.push_back(i % 8);
  CheckModuleGradients(emb, [&]() {
    return tensor::Sum(tensor::Square(head.Forward(emb.Forward(ids))));
  });
}

// Every shape runs with the serial pool and with 4 threads: the gradients
// must check out either way (the kernels are thread-count-invariant).
INSTANTIATE_TEST_SUITE_P(
    Shapes, LayerGradCheckTest,
    ::testing::Values(LayerShape{1, 2, 3, 7, 1}, LayerShape{2, 4, 4, 21, 1},
                      LayerShape{3, 5, 2, 77, 1}, LayerShape{4, 3, 6, 99, 1},
                      LayerShape{1, 2, 3, 7, 4}, LayerShape{2, 4, 4, 21, 4},
                      LayerShape{3, 5, 2, 77, 4}, LayerShape{4, 3, 6, 99, 4}));

// ---------------------------------------------------------------------------
// Optimizer dynamics, parameterized by learning rate.
// ---------------------------------------------------------------------------

class OptimizerDynamicsTest : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerDynamicsTest, AdamConvergesOnConvexLoss) {
  // Adam is not monotone step-to-step (it can overshoot at high rates), but
  // it must make large overall progress on a convex bowl.
  Rng rng(5);
  Tensor x = Tensor::Randn({6}, rng, 2.0f, true);
  const double initial = tensor::Sum(tensor::Square(x)).item();
  Adam opt({x}, GetParam());
  for (int step = 0; step < 200; ++step) {
    Tensor loss = tensor::Sum(tensor::Square(x));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(tensor::Sum(tensor::Square(x)).item(), initial / 10.0);
}

TEST_P(OptimizerDynamicsTest, GradClipNeverIncreasesNorm) {
  Rng rng(6);
  Tensor a = Tensor::Randn({10}, rng, 5.0f, true);
  tensor::Sum(tensor::Square(a)).Backward();
  std::vector<Tensor> params = {a};
  const double before = GlobalGradNorm(params);
  ClipGradNorm(params, GetParam() * 100.0);
  EXPECT_LE(GlobalGradNorm(params), before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LearningRates, OptimizerDynamicsTest,
                         ::testing::Values(0.01, 0.05, 0.2));

}  // namespace
}  // namespace rrre::nn
