#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace rrre::common {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  RRRE_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseAssignOrReturn(9, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrDieMovesValue) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(std::move(r).ValueOrDie(), "hello");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values should appear in 500 draws.
}

TEST(RngTest, NormalHasApproximatelyUnitMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullRangeIsPermutation) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream must not simply mirror the parent's next outputs.
  bool differs = false;
  Rng a_copy(31);
  a_copy.NextUint64();  // Mirror the draw consumed by Fork().
  for (int i = 0; i < 8; ++i) {
    if (child.NextUint64() != a_copy.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, KeyedForkDoesNotAdvanceParent) {
  Rng a(31);
  Rng untouched(31);
  (void)a.Fork(0);
  (void)a.Fork(7);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.NextUint64(), untouched.NextUint64());
  }
}

TEST(RngTest, KeyedForkStreamsAreStableAndRepeatable) {
  Rng a(31);
  Rng b(31);
  for (uint64_t stream : {0ull, 1ull, 5ull, 1000000007ull}) {
    Rng ca = a.Fork(stream);
    Rng cb = b.Fork(stream);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

TEST(RngTest, KeyedForkStreamsAreDecorrelated) {
  // Consecutive stream ids must land in unrelated regions of seed space:
  // interleaved bit agreement between neighboring streams should look like
  // coin flips, and no two streams may collide on their prefix.
  Rng parent(31);
  constexpr int kStreams = 32;
  constexpr int kDraws = 64;
  std::vector<std::vector<uint64_t>> draws(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    Rng child = parent.Fork(static_cast<uint64_t>(s));
    for (int i = 0; i < kDraws; ++i) draws[s].push_back(child.NextUint64());
  }
  for (int s = 0; s + 1 < kStreams; ++s) {
    EXPECT_NE(draws[s], draws[s + 1]);
    int64_t agreeing_bits = 0;
    for (int i = 0; i < kDraws; ++i) {
      agreeing_bits += 64 - __builtin_popcountll(draws[s][i] ^ draws[s + 1][i]);
    }
    // 64 * kDraws fair coin flips: mean 2048, stddev 32. Allow 6 sigma.
    EXPECT_NEAR(static_cast<double>(agreeing_bits), 2048.0, 192.0)
        << "streams " << s << " and " << s + 1;
  }
}

TEST(RngTest, KeyedForkIsPlatformStable) {
  // Golden values: pure 64-bit integer derivation, identical on every
  // platform and compiler. A change here breaks saved-experiment
  // reproducibility — do not update casually.
  Rng parent(31);
  Rng s0 = parent.Fork(0);
  EXPECT_EQ(s0.NextUint64(), 13313566557847529207ULL);
  EXPECT_EQ(s0.NextUint64(), 1018600636666621339ULL);
  Rng s1 = parent.Fork(1);
  EXPECT_EQ(s1.NextUint64(), 6198543860755348987ULL);
  EXPECT_EQ(s1.NextUint64(), 10363436723649855775ULL);
  Rng s2 = parent.Fork(2);
  EXPECT_EQ(s2.NextUint64(), 17481159588961507605ULL);
  EXPECT_EQ(s2.NextUint64(), 10205662166185360746ULL);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  the\tquick \n brown  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "the");
  EXPECT_EQ(parts[1], "quick");
  EXPECT_EQ(parts[2], "brown");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y\t"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ToLower) { EXPECT_EQ(ToLower("AbC9!"), "abc9!"); }

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("model.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", ".bin"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%.3f|%d|%s", 1.5, 7, "x"), "1.500|7|x");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

// ---------------------------------------------------------------------------
// IO
// ---------------------------------------------------------------------------

TEST(IoTest, WriteAndReadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rrre_io_test.txt";
  ASSERT_TRUE(WriteFile(path, "hello\nworld").ok());
  auto r = ReadFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileFails) {
  auto r = ReadFile("/nonexistent/definitely/missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, TsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rrre_tsv_test.tsv";
  std::vector<std::vector<std::string>> rows = {
      {"u1", "i1", "5", "nice place"},
      {"u2", "i2", "1", "terrible"},
  };
  ASSERT_TRUE(WriteTsv(path, rows).ok());
  auto r = ReadTsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), rows);
  std::remove(path.c_str());
}

TEST(IoTest, TsvSkipsBlankLines) {
  const std::string path = ::testing::TempDir() + "/rrre_tsv_blank.tsv";
  ASSERT_TRUE(WriteFile(path, "a\tb\n\nc\td\n\n").ok());
  auto r = ReadTsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, EscapeTsvFieldReplacesControlChars) {
  EXPECT_EQ(EscapeTsvField("a\tb\nc\rd"), "a b c d");
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(FlagsTest, DefaultsUsedWhenNotPassed) {
  FlagParser flags;
  flags.AddInt("epochs", 10, "");
  flags.AddString("dataset", "yelpchi", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 10);
  EXPECT_EQ(flags.GetString("dataset"), "yelpchi");
}

TEST(FlagsTest, ParsesEqualsAndSpaceSyntax) {
  FlagParser flags;
  flags.AddInt("epochs", 10, "");
  flags.AddDouble("lr", 0.01, "");
  flags.AddBool("verbose", false, "");
  const char* argv[] = {"prog", "--epochs=25", "--lr", "0.5", "--verbose"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.5);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, BadIntIsError) {
  FlagParser flags;
  flags.AddInt("epochs", 10, "");
  const char* argv[] = {"prog", "--epochs=ten"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser flags;
  flags.AddInt("k", 1, "");
  const char* argv[] = {"prog", "input.tsv", "--k=3", "out.tsv"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.tsv");
  EXPECT_EQ(flags.positional()[1], "out.tsv");
}

TEST(FlagsTest, HelpRequested) {
  FlagParser flags;
  flags.AddInt("k", 1, "neighborhood size");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage("prog").find("neighborhood size"), std::string::npos);
}

TEST(FlagsTest, BoolExplicitFalse) {
  FlagParser flags;
  flags.AddBool("verbose", true, "");
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_FALSE(flags.GetBool("verbose"));
}


// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(99.0), 0.0);
}

TEST(HistogramTest, SingleValueIsEveryPercentile) {
  Histogram h;
  h.Record(1234.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.Mean(), 1234.5);
  // Percentiles are clamped to the exact [Min, Max] range, so a single
  // sample is reported exactly at every percentile.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1234.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 1234.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1234.5);
}

TEST(HistogramTest, PercentilesOfUniformRampWithinBucketResolution) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
  // Log-linear buckets with 16 sub-buckets per octave bound the relative
  // error by 1/16; allow 10% slack.
  EXPECT_NEAR(h.Percentile(50.0), 500.0, 50.0);
  EXPECT_NEAR(h.Percentile(95.0), 950.0, 95.0);
  EXPECT_NEAR(h.Percentile(99.0), 990.0, 99.0);
  // Percentiles are monotone and p100 is exact.
  EXPECT_LE(h.Percentile(50.0), h.Percentile(95.0));
  EXPECT_LE(h.Percentile(95.0), h.Percentile(99.0));
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1000.0);
}

TEST(HistogramTest, NonPositiveAndSubUnitValuesLandInFirstBucket) {
  Histogram h;
  h.Record(-5.0);
  h.Record(0.0);
  h.Record(0.3);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.Min(), -5.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1.0);
  // All samples share the first bucket; its upper edge is clamped to Max.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 1.0);
}

TEST(HistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  Histogram a;
  Histogram b;
  Histogram combined;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(0.0, 5e6);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  Histogram merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_DOUBLE_EQ(merged.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(merged.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), combined.Max());
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), combined.Percentile(p)) << p;
  }
}

TEST(HistogramTest, MergeIntoEmptyAndOfEmptyIsIdentity) {
  Histogram a;
  a.Record(10.0);
  a.Record(100.0);
  Histogram empty;
  Histogram merged;
  merged.Merge(a);
  merged.Merge(empty);  // No-op.
  EXPECT_EQ(merged.count(), 2);
  EXPECT_DOUBLE_EQ(merged.Min(), 10.0);
  EXPECT_DOUBLE_EQ(merged.Max(), 100.0);
}

TEST(HistogramTest, PerThreadHistogramsMergeAcrossThreads) {
  // The intended concurrent pattern: one histogram per thread, merged once
  // the threads are done.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<Histogram> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &per_thread] {
      for (int i = 0; i < kPerThread; ++i) {
        per_thread[t].Record(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram merged;
  for (const auto& h : per_thread) merged.Merge(h);
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(merged.Min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.Max(), kThreads * kPerThread);
}

TEST(HistogramTest, SummaryMentionsCountAndPercentiles) {
  Histogram h;
  for (int i = 1; i <= 64; ++i) h.Record(static_cast<double>(i));
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=64"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
}

}  // namespace
}  // namespace rrre::common
