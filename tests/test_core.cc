#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/config.h"
#include "core/features.h"
#include "core/model.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace rrre::core {
namespace {

using common::Rng;

/// A tiny config that keeps unit tests fast on one core.
RrreConfig TinyConfig() {
  RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  c.lr = 5e-3;
  return c;
}

data::ReviewDataset TinyCorpus(uint64_t seed = 9) {
  Rng rng(seed);
  data::DatasetProfile p = data::YelpChiProfile(0.04);
  return data::GenerateSyntheticDataset(p, rng);
}

// ---------------------------------------------------------------------------
// FeatureBuilder
// ---------------------------------------------------------------------------

class FeatureBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<data::ReviewDataset>(3, 2);
    auto add = [&](int64_t u, int64_t i, float r, int64_t ts,
                   const std::string& text) {
      data::Review rev;
      rev.user = u;
      rev.item = i;
      rev.rating = r;
      rev.timestamp = ts;
      rev.text = text;
      ds_->Add(rev);
    };
    add(0, 0, 5.0f, 1, "great pasta here");
    add(0, 1, 4.0f, 2, "friendly staff");
    add(1, 0, 1.0f, 3, "worst scam avoid");
    add(2, 1, 3.0f, 4, "okay average");
    ds_->BuildIndex();
    std::vector<std::vector<std::string>> docs;
    for (const auto& r : ds_->reviews()) docs.push_back(text::Tokenize(r.text));
    vocab_ = std::make_unique<text::Vocabulary>(
        text::Vocabulary::Build(docs, /*min_count=*/1));
    config_ = TinyConfig();
    builder_ = std::make_unique<FeatureBuilder>(config_, ds_.get(),
                                                vocab_.get());
  }

  RrreConfig config_;
  std::unique_ptr<data::ReviewDataset> ds_;
  std::unique_ptr<text::Vocabulary> vocab_;
  std::unique_ptr<FeatureBuilder> builder_;
};

TEST_F(FeatureBuilderTest, ShapesMatchConfig) {
  Rng rng(1);
  auto batch = builder_->Build({{0, 0}, {2, 1}}, rng);
  EXPECT_EQ(batch.batch_size, 2);
  EXPECT_EQ(batch.user_hist_tokens.size(),
            static_cast<size_t>(2 * config_.s_u * config_.max_tokens));
  EXPECT_EQ(batch.user_hist_mask.size(), static_cast<size_t>(2 * config_.s_u));
  EXPECT_EQ(batch.item_hist_mask.size(), static_cast<size_t>(2 * config_.s_i));
}

TEST_F(FeatureBuilderTest, MaskReflectsHistoryLength) {
  Rng rng(1);
  auto batch = builder_->Build({{0, 0}}, rng);
  // User 0 wrote 2 reviews; s_u = 3 -> 2 live slots + 1 masked.
  int live = 0;
  for (float m : batch.user_hist_mask) {
    if (m == 0.0f) ++live;
  }
  EXPECT_EQ(live, 2);
  // Item 0 has 2 reviews; s_i = 4 -> 2 live slots.
  live = 0;
  for (float m : batch.item_hist_mask) {
    if (m == 0.0f) ++live;
  }
  EXPECT_EQ(live, 2);
}

TEST_F(FeatureBuilderTest, PadSlotsCarryPadTokens) {
  Rng rng(1);
  auto batch = builder_->Build({{2, 1}}, rng);
  // User 2 wrote 1 review; slots 1..2 are pads -> all pad tokens.
  for (int64_t slot = 1; slot < config_.s_u; ++slot) {
    for (int64_t t = 0; t < config_.max_tokens; ++t) {
      EXPECT_EQ(batch.user_hist_tokens[static_cast<size_t>(
                    slot * config_.max_tokens + t)],
                text::Vocabulary::kPadId);
    }
  }
}

TEST_F(FeatureBuilderTest, ItemHistoryCarriesWriterIds) {
  Rng rng(1);
  auto batch = builder_->Build({{0, 0}}, rng);
  // Item 0's reviews were written by users 0 and 1 (time order: 0 then 1).
  EXPECT_EQ(batch.item_hist_users[0], 0);
  EXPECT_EQ(batch.item_hist_users[1], 1);
  // All item-history slots are for item 0.
  for (int64_t s = 0; s < 2; ++s) EXPECT_EQ(batch.item_hist_items[s], 0);
}

TEST_F(FeatureBuilderTest, ExcludeRemovesTargetReview) {
  Rng rng(1);
  // Pair (0,0), excluding review 0 (user 0's review of item 0).
  auto batch = builder_->Build({{0, 0}}, {0}, rng);
  int live = 0;
  for (float m : batch.user_hist_mask) {
    if (m == 0.0f) ++live;
  }
  EXPECT_EQ(live, 1);  // Only the review of item 1 remains.
  EXPECT_EQ(batch.user_hist_items[0], 1);
}

// ---------------------------------------------------------------------------
// ReviewEncoder
// ---------------------------------------------------------------------------

TEST(ReviewEncoderTest, EncodesSlotsToRevDim) {
  Rng rng(41);
  nn::Embedding words(10, 6, rng);
  ReviewEncoder encoder(&words, /*max_tokens=*/4, /*rev_dim=*/8, rng);
  // Two slots of 4 token ids each.
  std::vector<int64_t> tokens = {2, 3, 4, 0, 5, 6, 0, 0};
  tensor::Tensor out = encoder.Encode(tokens, 2);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 8}));
  EXPECT_EQ(encoder.rev_dim(), 8);
}

TEST(ReviewEncoderTest, AllPadSlotsAreIdentical) {
  Rng rng(43);
  nn::Embedding words(10, 6, rng);
  ReviewEncoder encoder(&words, 4, 8, rng);
  std::vector<int64_t> tokens(8, text::Vocabulary::kPadId);
  tensor::Tensor out = encoder.Encode(tokens, 2);
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(out.at(0, j), out.at(1, j));
  }
}

TEST(ReviewEncoderTest, TokenOrderMatters) {
  Rng rng(47);
  nn::Embedding words(10, 6, rng);
  ReviewEncoder encoder(&words, 4, 8, rng);
  tensor::Tensor forward = encoder.Encode({2, 3, 4, 5}, 1);
  tensor::Tensor reversed = encoder.Encode({5, 4, 3, 2}, 1);
  bool differs = false;
  for (int64_t j = 0; j < 8; ++j) {
    if (std::abs(forward.at(0, j) - reversed.at(0, j)) > 1e-6f) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// RrreModel
// ---------------------------------------------------------------------------

class ModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TinyConfig();
    ds_ = std::make_unique<data::ReviewDataset>(TinyCorpus());
    std::vector<std::vector<std::string>> docs;
    for (const auto& r : ds_->reviews()) docs.push_back(text::Tokenize(r.text));
    vocab_ = std::make_unique<text::Vocabulary>(
        text::Vocabulary::Build(docs, 1));
    Rng rng(3);
    model_ = std::make_unique<RrreModel>(config_, ds_->num_users(),
                                         ds_->num_items(), vocab_->size(),
                                         rng);
    builder_ = std::make_unique<FeatureBuilder>(config_, ds_.get(),
                                                vocab_.get());
  }

  RrreModel::Batch MakeBatch(int64_t n) {
    Rng rng(7);
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int64_t i = 0; i < n; ++i) {
      const data::Review& r = ds_->review(i * 3 % ds_->size());
      pairs.emplace_back(r.user, r.item);
    }
    return builder_->Build(pairs, rng);
  }

  RrreConfig config_;
  std::unique_ptr<data::ReviewDataset> ds_;
  std::unique_ptr<text::Vocabulary> vocab_;
  std::unique_ptr<RrreModel> model_;
  std::unique_ptr<FeatureBuilder> builder_;
};

TEST_F(ModelTest, ForwardShapes) {
  auto batch = MakeBatch(4);
  auto out = model_->Forward(batch, false, nullptr);
  EXPECT_EQ(out.rating.shape(), (tensor::Shape{4, 1}));
  EXPECT_EQ(out.reliability_logits.shape(), (tensor::Shape{4, 2}));
  EXPECT_EQ(out.reliability.shape(), (tensor::Shape{4, 2}));
  EXPECT_EQ(out.x_u.shape(), (tensor::Shape{4, config_.rev_dim}));
  EXPECT_EQ(out.y_i.shape(), (tensor::Shape{4, config_.rev_dim}));
  EXPECT_EQ(out.user_alphas.shape(), (tensor::Shape{4, config_.s_u}));
  EXPECT_EQ(out.item_alphas.shape(), (tensor::Shape{4, config_.s_i}));
}

TEST_F(ModelTest, ReliabilityIsDistribution) {
  auto batch = MakeBatch(4);
  auto out = model_->Forward(batch, false, nullptr);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(out.reliability.at(i, 0) + out.reliability.at(i, 1), 1.0f,
                1e-5f);
    EXPECT_GE(out.reliability.at(i, 1), 0.0f);
  }
}

TEST_F(ModelTest, MaskedSlotsGetNoAttention) {
  auto batch = MakeBatch(4);
  auto out = model_->Forward(batch, false, nullptr);
  for (int64_t b = 0; b < 4; ++b) {
    float sum = 0.0f;
    for (int64_t s = 0; s < config_.s_u; ++s) {
      const float mask =
          batch.user_hist_mask[static_cast<size_t>(b * config_.s_u + s)];
      if (mask != 0.0f) {
        EXPECT_LT(out.user_alphas.at(b, s), 1e-6f);
      }
      sum += out.user_alphas.at(b, s);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_F(ModelTest, MeanPoolingAblationGivesUniformWeights) {
  config_.use_attention = false;
  Rng rng(5);
  RrreModel mean_model(config_, ds_->num_users(), ds_->num_items(),
                       vocab_->size(), rng);
  auto batch = MakeBatch(3);
  auto out = mean_model.Forward(batch, false, nullptr);
  for (int64_t b = 0; b < 3; ++b) {
    int live = 0;
    for (int64_t s = 0; s < config_.s_u; ++s) {
      if (batch.user_hist_mask[static_cast<size_t>(b * config_.s_u + s)] ==
          0.0f) {
        ++live;
      }
    }
    for (int64_t s = 0; s < config_.s_u; ++s) {
      const bool is_live =
          batch.user_hist_mask[static_cast<size_t>(b * config_.s_u + s)] ==
          0.0f;
      if (is_live) {
        EXPECT_NEAR(out.user_alphas.at(b, s), 1.0f / live, 1e-4f);
      }
    }
  }
}

TEST_F(ModelTest, DeterministicInference) {
  auto batch = MakeBatch(4);
  auto o1 = model_->Forward(batch, false, nullptr);
  auto o2 = model_->Forward(batch, false, nullptr);
  EXPECT_EQ(o1.rating.ToVector(), o2.rating.ToVector());
  EXPECT_EQ(o1.reliability.ToVector(), o2.reliability.ToVector());
}

TEST_F(ModelTest, GradReachesBothHeadsAndTowers) {
  auto batch = MakeBatch(4);
  auto out = model_->Forward(batch, true, nullptr);
  std::vector<int64_t> labels = {1, 0, 1, 1};
  tensor::Tensor loss = tensor::Add(
      tensor::CrossEntropyWithLogits(out.reliability_logits, labels),
      tensor::Mean(tensor::Square(out.rating)));
  loss.Backward();
  int with_grad = 0;
  int total = 0;
  for (const auto& [name, p] : model_->NamedParameters()) {
    ++total;
    double norm = 0.0;
    if (p.impl()->grad.size() == p.impl()->data.size()) {
      for (float g : p.impl()->grad) norm += std::abs(g);
    }
    if (norm > 0.0) ++with_grad;
  }
  // Everything except attention b2 (softmax shift-invariance) and possibly
  // untouched embedding rows should receive gradient.
  EXPECT_GE(with_grad, total - 2);
}

TEST_F(ModelTest, ParametersWithoutWordTableExcludesIt) {
  auto all = model_->Parameters();
  auto sans = model_->ParametersWithoutWordTable();
  EXPECT_EQ(sans.size(), all.size() - 1);
  for (const auto& p : sans) {
    EXPECT_NE(p.impl().get(), model_->word_embedding().table().impl().get());
  }
}

// ---------------------------------------------------------------------------
// Trainer end-to-end
// ---------------------------------------------------------------------------

TEST(TrainerTest, LossDecreasesAcrossEpochs) {
  RrreConfig config = TinyConfig();
  config.epochs = 4;
  RrreTrainer trainer(config);
  std::vector<double> losses;
  trainer.Fit(TinyCorpus(), [&](const RrreTrainer::EpochStats& s) {
    losses.push_back(s.loss);
  });
  ASSERT_EQ(losses.size(), 4u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(TrainerTest, LearnsReliabilitySignalOnTrain) {
  RrreConfig config = TinyConfig();
  config.epochs = 4;
  RrreTrainer trainer(config);
  data::ReviewDataset corpus = TinyCorpus();
  trainer.Fit(corpus);
  auto preds = trainer.PredictDataset(corpus);
  std::vector<int> labels;
  for (const auto& r : corpus.reviews()) labels.push_back(r.is_benign());
  const double auc = eval::Auc(preds.reliabilities, labels);
  EXPECT_GT(auc, 0.8) << "train AUC";
}

TEST(TrainerTest, GeneralizesToHeldOutReviews) {
  RrreConfig config = TinyConfig();
  config.epochs = 5;
  Rng rng(11);
  Rng gen_rng(13);
  data::ReviewDataset corpus = data::GenerateSyntheticDataset(
      data::YelpChiProfile(0.12), gen_rng);
  auto [train, test] = corpus.Split(0.7, rng);
  RrreTrainer trainer(config);
  trainer.Fit(train);
  auto preds = trainer.PredictDataset(test);
  std::vector<int> labels;
  std::vector<double> targets;
  for (const auto& r : test.reviews()) {
    labels.push_back(r.is_benign());
    targets.push_back(r.rating);
  }
  EXPECT_GT(eval::Auc(preds.reliabilities, labels), 0.65) << "test AUC";
  EXPECT_LT(eval::BiasedRmse(preds.ratings, targets, labels), 1.6)
      << "test bRMSE";
}

TEST(TrainerTest, PredictionsAreFiniteAndPlausible) {
  RrreConfig config = TinyConfig();
  RrreTrainer trainer(config);
  data::ReviewDataset corpus = TinyCorpus();
  trainer.Fit(corpus);
  auto preds = trainer.PredictDataset(corpus);
  for (double r : preds.ratings) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, -5.0);
    EXPECT_LT(r, 12.0);
  }
  for (double l : preds.reliabilities) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST(TrainerTest, DeterministicAcrossRunsWithSameSeed) {
  RrreConfig config = TinyConfig();
  config.epochs = 1;
  data::ReviewDataset corpus = TinyCorpus();
  RrreTrainer a(config);
  a.Fit(corpus);
  RrreTrainer b(config);
  b.Fit(corpus);
  auto pa = a.PredictDataset(corpus);
  auto pb = b.PredictDataset(corpus);
  EXPECT_EQ(pa.ratings, pb.ratings);
  EXPECT_EQ(pa.reliabilities, pb.reliabilities);
}

TEST(TrainerTest, RrreMinusUsesUnbiasedLoss) {
  // Just exercises the Eq. 13 path end to end.
  RrreConfig config = TinyConfig();
  config.biased_loss = false;
  config.epochs = 1;
  RrreTrainer trainer(config);
  trainer.Fit(TinyCorpus());
  EXPECT_TRUE(trainer.fitted());
}

TEST(TrainerTest, PredictBeforeFitIsFatal) {
  RrreTrainer trainer(TinyConfig());
  EXPECT_DEATH(trainer.PredictPairs({{0, 0}}), "Fit");
}

// ---------------------------------------------------------------------------
// ReliableRecommender
// ---------------------------------------------------------------------------

class RecommenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RrreConfig config = TinyConfig();
    config.epochs = 2;
    trainer_ = std::make_unique<RrreTrainer>(config);
    corpus_ = std::make_unique<data::ReviewDataset>(TinyCorpus());
    trainer_->Fit(*corpus_);
    recommender_ = std::make_unique<ReliableRecommender>(trainer_.get());
  }

  std::unique_ptr<RrreTrainer> trainer_;
  std::unique_ptr<data::ReviewDataset> corpus_;
  std::unique_ptr<ReliableRecommender> recommender_;
};

TEST_F(RecommenderTest, ReturnsRequestedCount) {
  auto recs = recommender_->Recommend(0, 3, 10);
  EXPECT_EQ(recs.size(), 3u);
}

TEST_F(RecommenderTest, ResultsSortedByReliability) {
  auto recs = recommender_->Recommend(0, 5, 15);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].reliability, recs[i].reliability);
  }
}

TEST_F(RecommenderTest, CandidatesComeFromTopRatedPool) {
  // Every recommended item must have a rating at least as high as the
  // candidate_pool-th best rating over all unseen items.
  const int64_t pool = 10;
  auto recs = recommender_->Recommend(1, 3, pool);
  ASSERT_FALSE(recs.empty());
  // Rebuild the full rating ranking over the same unseen-item universe.
  const auto& train = trainer_->train_data();
  std::set<int64_t> seen;
  for (int64_t idx : train.ReviewsByUser(1)) {
    seen.insert(train.review(idx).item);
  }
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < corpus_->num_items(); ++i) {
    if (!seen.count(i)) pairs.emplace_back(1, i);
  }
  auto preds = trainer_->PredictPairs(pairs);
  std::vector<double> ratings = preds.ratings;
  std::sort(ratings.begin(), ratings.end(), std::greater<>());
  const double cutoff = ratings[static_cast<size_t>(pool - 1)];
  for (const auto& rec : recs) {
    EXPECT_GE(rec.rating, cutoff - 1e-6);
  }
}

TEST_F(RecommenderTest, ExcludesSeenItems) {
  // Find a user with at least one training review.
  const auto& train = trainer_->train_data();
  int64_t user = -1;
  for (int64_t u = 0; u < train.num_users(); ++u) {
    if (!train.ReviewsByUser(u).empty()) {
      user = u;
      break;
    }
  }
  ASSERT_GE(user, 0);
  std::set<int64_t> seen;
  for (int64_t idx : train.ReviewsByUser(user)) {
    seen.insert(train.review(idx).item);
  }
  auto recs = recommender_->Recommend(user, 5, 20, /*exclude_seen=*/true);
  for (const auto& rec : recs) {
    EXPECT_FALSE(seen.count(rec.item)) << "item " << rec.item;
  }
}

TEST_F(RecommenderTest, ExplanationsComeFromItemReviews) {
  // Pick an item with several reviews.
  const auto& train = trainer_->train_data();
  int64_t item = -1;
  for (int64_t i = 0; i < train.num_items(); ++i) {
    if (train.ReviewsByItem(i).size() >= 4) {
      item = i;
      break;
    }
  }
  ASSERT_GE(item, 0);
  auto explanations = recommender_->Explain(item, 2, 4);
  ASSERT_EQ(explanations.size(), 2u);
  for (const auto& e : explanations) {
    EXPECT_EQ(train.review(e.review_index).item, item);
    EXPECT_EQ(train.review(e.review_index).text, e.text);
  }
  // Sorted by reliability.
  EXPECT_GE(explanations[0].reliability, explanations[1].reliability);
}

TEST_F(RecommenderTest, EmptyForItemWithoutReviews) {
  const auto& train = trainer_->train_data();
  for (int64_t i = 0; i < train.num_items(); ++i) {
    if (train.ReviewsByItem(i).empty()) {
      EXPECT_TRUE(recommender_->Explain(i, 3).empty());
      return;
    }
  }
  GTEST_SKIP() << "no empty item in this corpus";
}

}  // namespace
}  // namespace rrre::core
