#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"

namespace rrre::eval {
namespace {

// ---------------------------------------------------------------------------
// RMSE / bRMSE
// ---------------------------------------------------------------------------

TEST(RmseTest, HandComputed) {
  EXPECT_NEAR(Rmse({1.0, 3.0}, {2.0, 1.0}), std::sqrt((1.0 + 4.0) / 2.0),
              1e-12);
}

TEST(RmseTest, PerfectPredictionIsZero) {
  EXPECT_EQ(Rmse({2.5, 4.0, 1.0}, {2.5, 4.0, 1.0}), 0.0);
}

TEST(BiasedRmseTest, IgnoresFakePairs) {
  // Fake pair has huge error but label 0.
  const double b =
      BiasedRmse({5.0, 1.0, 3.0}, {4.0, 5.0, 3.0}, {1, 0, 1});
  EXPECT_NEAR(b, std::sqrt((1.0 + 0.0) / 2.0), 1e-12);
}

TEST(BiasedRmseTest, AllBenignMatchesRmse) {
  std::vector<double> p = {1.0, 2.0, 4.5};
  std::vector<double> t = {2.0, 2.0, 4.0};
  EXPECT_NEAR(BiasedRmse(p, t, {1, 1, 1}), Rmse(p, t), 1e-12);
}

// ---------------------------------------------------------------------------
// AUC
// ---------------------------------------------------------------------------

TEST(AucTest, PerfectSeparation) {
  EXPECT_NEAR(Auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0, 1e-12);
}

TEST(AucTest, PerfectInversion) {
  EXPECT_NEAR(Auc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0, 1e-12);
}

TEST(AucTest, AllTiedIsHalf) {
  EXPECT_NEAR(Auc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5, 1e-12);
}

TEST(AucTest, HandComputedMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 -> 3/4.
  EXPECT_NEAR(Auc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75, 1e-12);
}

TEST(AucTest, TieAcrossClassesCountsHalf) {
  // pos 0.5 ties neg 0.5 -> 0.5 of one pair.
  EXPECT_NEAR(Auc({0.5, 0.5}, {1, 0}), 0.5, 1e-12);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_NEAR(Auc({0.1, 0.9}, {1, 1}), 0.5, 1e-12);
}

TEST(AucTest, AllPositiveIsHalf) {
  // No negative to rank against: the convention is chance level, regardless
  // of how the scores are ordered.
  EXPECT_EQ(Auc({0.9, 0.5, 0.1, 0.7}, {1, 1, 1, 1}), 0.5);
}

TEST(AucTest, AllNegativeIsHalf) {
  EXPECT_EQ(Auc({0.9, 0.5, 0.1, 0.7}, {0, 0, 0, 0}), 0.5);
}

TEST(AucTest, TiesWithinOneClassDoNotMatter) {
  // Ties among positives (or among negatives) never change the Mann-Whitney
  // statistic — only cross-class ties contribute the 1/2 terms.
  EXPECT_NEAR(Auc({0.8, 0.8, 0.2, 0.2}, {1, 1, 0, 0}), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Average precision
// ---------------------------------------------------------------------------

TEST(ApTest, PerfectRankingIsOne) {
  EXPECT_NEAR(AveragePrecision({0.9, 0.8, 0.1}, {1, 1, 0}), 1.0, 1e-12);
}

TEST(ApTest, HandComputed) {
  // Ranking: pos(1), neg, pos(2). AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision({0.9, 0.5, 0.4}, {1, 0, 1}),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(ApTest, NoPositivesIsZero) {
  EXPECT_EQ(AveragePrecision({0.9, 0.1}, {0, 0}), 0.0);
}

TEST(ApTest, TiedScoresBreakByOriginalIndex) {
  // All three tie; the stable descending sort keeps the original order, so
  // the ranking is index 0 (neg), 1 (pos), 2 (pos):
  //   AP = (1/2 + 2/3) / 2 = 7/12.
  EXPECT_NEAR(AveragePrecision({0.5, 0.5, 0.5}, {0, 1, 1}), 7.0 / 12.0,
              1e-12);
  // Same tie, positive first by index: it ranks on top and AP is 1; with the
  // labels swapped the positive falls to rank 2 and AP halves. The tie-break
  // is what makes both values deterministic.
  EXPECT_NEAR(AveragePrecision({0.5, 0.5}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(AveragePrecision({0.5, 0.5}, {0, 1}), 0.5, 1e-12);
}

TEST(ApTest, PartialTieHandComputed) {
  // Ranking: idx 0 (0.9, pos), then the 0.4 tie in index order: idx 1 (neg),
  // idx 3 (pos), then idx 2 (0.2, neg).
  //   AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision({0.9, 0.4, 0.2, 0.4}, {1, 0, 0, 1}), 5.0 / 6.0,
              1e-12);
}

TEST(ApTest, MajorityPositiveBaselineIsHigh) {
  // With 90% positives even a random-ish ordering scores near 0.9 — this is
  // why Table IV's AP column rewards ranking benign (the majority) on top.
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(static_cast<double>((i * 37) % 100));
    labels.push_back(i % 10 == 0 ? 0 : 1);
  }
  EXPECT_GT(AveragePrecision(scores, labels), 0.8);
}

// ---------------------------------------------------------------------------
// NDCG@k
// ---------------------------------------------------------------------------

TEST(NdcgTest, AllBenignTopKIsOne) {
  EXPECT_NEAR(NdcgAtK({0.9, 0.8, 0.1, 0.05}, {1, 1, 0, 0}, 2), 1.0, 1e-12);
}

TEST(NdcgTest, AllFakeTopKIsZero) {
  EXPECT_NEAR(NdcgAtK({0.9, 0.8, 0.1, 0.05}, {0, 0, 1, 1}, 2), 0.0, 1e-12);
}

TEST(NdcgTest, HandComputedAtTwo) {
  // Top-2 by score: labels {0, 1}. DCG = 0/log2(2) + 1/log2(3).
  // IDCG = 1/log2(2) + 1/log2(3).
  const double dcg = 1.0 / std::log2(3.0);
  const double idcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({0.9, 0.8, 0.1}, {0, 1, 1}, 2), dcg / idcg, 1e-12);
}

TEST(NdcgTest, ClampsKToListSize) {
  EXPECT_NEAR(NdcgAtK({0.9, 0.1}, {1, 1}, 100), 1.0, 1e-12);
}

TEST(NdcgTest, KBeyondListLengthHandComputed) {
  // k=10 clamps to the 3-element list. Ranking by score: idx 0 (neg),
  // idx 1 (pos), idx 2 (neg).
  //   DCG  = 1/log2(3)          (the one positive at rank 2)
  //   IDCG = 1/log2(2) = 1      (min(k, #positives) = 1 ideal slot)
  EXPECT_NEAR(NdcgAtK({0.9, 0.5, 0.4}, {0, 1, 0}, 10),
              1.0 / std::log2(3.0), 1e-12);
  // The clamp is exact: any k >= the list size gives the same value.
  EXPECT_EQ(NdcgAtK({0.9, 0.5, 0.4}, {0, 1, 0}, 3),
            NdcgAtK({0.9, 0.5, 0.4}, {0, 1, 0}, 1000));
}

TEST(NdcgTest, MonotoneDegradationAsFakesRankHigher) {
  std::vector<int> labels = {1, 1, 1, 1, 0, 0, 0, 0};
  // Good ranking: positives first.
  std::vector<double> good = {8, 7, 6, 5, 4, 3, 2, 1};
  // Bad ranking: alternating.
  std::vector<double> bad = {8, 4, 7, 3, 6, 2, 5, 1};
  EXPECT_GT(NdcgAtK(good, labels, 6), NdcgAtK(bad, labels, 6));
}

TEST(NdcgTest, PerfectRankingWithFewerPositivesThanKIsOne) {
  // One positive, ranked first, k=3: the ideal ranking can do no better, so
  // NDCG must be exactly 1 (IDCG normalizes over min(k, #positives), not k).
  EXPECT_NEAR(NdcgAtK({0.9, 0.5, 0.4, 0.3}, {1, 0, 0, 0}, 3), 1.0, 1e-12);
  // Two positives, both in the top-2 of a k=4 window.
  EXPECT_NEAR(NdcgAtK({0.9, 0.8, 0.4, 0.3}, {1, 1, 0, 0}, 4), 1.0, 1e-12);
}

TEST(NdcgTest, HandComputedWithFewerPositivesThanK) {
  // One positive at rank 3 (0-based rank 2), k=3.
  // DCG = 1/log2(4); IDCG over min(3, 1) = 1 ideal slot = 1/log2(2).
  const double dcg = 1.0 / std::log2(4.0);
  const double idcg = 1.0 / std::log2(2.0);
  EXPECT_NEAR(NdcgAtK({0.9, 0.5, 0.4, 0.3}, {0, 0, 1, 0}, 3), dcg / idcg,
              1e-12);
}

TEST(NdcgTest, NoPositivesAnywhereIsZero) {
  EXPECT_NEAR(NdcgAtK({0.9, 0.5, 0.4}, {0, 0, 0}, 2), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Precision@k
// ---------------------------------------------------------------------------

TEST(PrecisionAtKTest, HandComputed) {
  EXPECT_NEAR(PrecisionAtK({0.9, 0.8, 0.7, 0.1}, {1, 0, 1, 1}, 3), 2.0 / 3.0,
              1e-12);
}

TEST(PrecisionAtKTest, TopOne) {
  EXPECT_EQ(PrecisionAtK({0.9, 0.1}, {0, 1}, 1), 0.0);
  EXPECT_EQ(PrecisionAtK({0.1, 0.9}, {0, 1}, 1), 1.0);
}

}  // namespace
}  // namespace rrre::eval
