// Property-style parameterized tests of the tensor engine: algebraic
// identities and autograd consistency over a sweep of shapes and seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <tuple>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace rrre::tensor {
namespace {

using common::Rng;

/// (rows, cols, seed)
using ShapeSeed = std::tuple<int64_t, int64_t, uint64_t>;

class TensorAlgebraTest : public ::testing::TestWithParam<ShapeSeed> {
 protected:
  int64_t rows() const { return std::get<0>(GetParam()); }
  int64_t cols() const { return std::get<1>(GetParam()); }
  Rng MakeRng() const { return Rng(std::get<2>(GetParam())); }
};

TEST_P(TensorAlgebraTest, AddIsCommutative) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor b = Tensor::Randn({rows(), cols()}, rng);
  EXPECT_EQ(Add(a, b).ToVector(), Add(b, a).ToVector());
}

TEST_P(TensorAlgebraTest, MulDistributesOverAdd) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor b = Tensor::Randn({rows(), cols()}, rng);
  Tensor c = Tensor::Randn({rows(), cols()}, rng);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-4f) << i;
  }
}

TEST_P(TensorAlgebraTest, SubOfSelfIsZero) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor z = Sub(a, a);
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.at(i), 0.0f);
}

TEST_P(TensorAlgebraTest, TransposeIsInvolution) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  EXPECT_EQ(Transpose(Transpose(a)).ToVector(), a.ToVector());
}

TEST_P(TensorAlgebraTest, ReshapeRoundTripPreservesValues) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor r = Reshape(Reshape(a, {rows() * cols()}), {rows(), cols()});
  EXPECT_EQ(r.ToVector(), a.ToVector());
}

TEST_P(TensorAlgebraTest, ConcatThenSliceRecoversParts) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor b = Tensor::Randn({rows(), cols()}, rng);
  Tensor cat = ConcatRows({a, b});
  EXPECT_EQ(SliceRows(cat, 0, rows()).ToVector(), a.ToVector());
  EXPECT_EQ(SliceRows(cat, rows(), rows()).ToVector(), b.ToVector());
  Tensor catc = ConcatCols({a, b});
  EXPECT_EQ(SliceCols(catc, 0, cols()).ToVector(), a.ToVector());
  EXPECT_EQ(SliceCols(catc, cols(), cols()).ToVector(), b.ToVector());
}

TEST_P(TensorAlgebraTest, SoftmaxIsShiftInvariant) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor shifted = AddScalar(a, 7.5f);
  Tensor sa = Softmax(a);
  Tensor sb = Softmax(shifted);
  for (int64_t i = 0; i < sa.numel(); ++i) {
    EXPECT_NEAR(sa.at(i), sb.at(i), 1e-5f);
  }
}

TEST_P(TensorAlgebraTest, SumIsLinear) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor b = Tensor::Randn({rows(), cols()}, rng);
  const float lhs = Sum(Add(MulScalar(a, 2.0f), b)).item();
  const float rhs = 2.0f * Sum(a).item() + Sum(b).item();
  EXPECT_NEAR(lhs, rhs, 1e-3f * std::abs(rhs) + 1e-3f);
}

TEST_P(TensorAlgebraTest, MatMulAgreesWithManualInnerProducts) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng);
  Tensor b = Tensor::Randn({cols(), rows()}, rng);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < rows(); ++i) {
    for (int64_t j = 0; j < rows(); ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3f);
    }
  }
}

TEST_P(TensorAlgebraTest, GradientOfSumIsOnes) {
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng, 1.0f, true);
  Sum(a).Backward();
  for (float g : a.grad()) EXPECT_EQ(g, 1.0f);
}

TEST_P(TensorAlgebraTest, ChainRuleThroughScalarScale) {
  // d/dx sum(s * x) == s everywhere.
  Rng rng = MakeRng();
  Tensor a = Tensor::Randn({rows(), cols()}, rng, 1.0f, true);
  Sum(MulScalar(a, -2.5f)).Backward();
  for (float g : a.grad()) EXPECT_FLOAT_EQ(g, -2.5f);
}

TEST_P(TensorAlgebraTest, WeightedPoolWithUniformWeightsIsRowMean) {
  Rng rng = MakeRng();
  const int64_t s = 4;
  Tensor values = Tensor::Randn({rows() * s, cols()}, rng);
  Tensor weights = Tensor::Full({rows(), s}, 1.0f / static_cast<float>(s));
  Tensor pooled = WeightedPool(values, weights);
  for (int64_t b = 0; b < rows(); ++b) {
    for (int64_t c = 0; c < cols(); ++c) {
      float mean = 0.0f;
      for (int64_t j = 0; j < s; ++j) mean += values.at(b * s + j, c);
      mean /= static_cast<float>(s);
      EXPECT_NEAR(pooled.at(b, c), mean, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorAlgebraTest,
    ::testing::Values(ShapeSeed{1, 1, 11}, ShapeSeed{2, 5, 22},
                      ShapeSeed{5, 2, 33}, ShapeSeed{7, 7, 44},
                      ShapeSeed{16, 3, 55}, ShapeSeed{3, 16, 66}));

// ---------------------------------------------------------------------------
// Autograd consistency across composite expressions, parameterized by seed.
// ---------------------------------------------------------------------------

class AutogradPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradPropertyTest, NumericalGradientOfRandomComposite) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({3, 4}, rng, 0.6f, true);
  Tensor w = Tensor::Randn({4, 3}, rng, 0.6f, true);
  auto f = [&]() {
    Tensor h = Tanh(MatMul(x, w));                 // [3,3]
    Tensor s = Softmax(h);                         // [3,3]
    return Mean(Mul(s, Sigmoid(MatMul(x, w))));    // scalar
  };
  Tensor out = f();
  out.Backward();
  const auto gx = x.grad();
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const float up = f().item();
    x.at(i) = orig - eps;
    const float down = f().item();
    x.at(i) = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(gx[static_cast<size_t>(i)], numeric,
                2e-2f * std::max(1.0f, std::abs(numeric)))
        << "entry " << i;
  }
}

namespace {

/// Central-difference check of d(f(x))/dx against x.grad() after Backward.
void CheckNumericalGradient(Tensor& x, const std::function<Tensor()>& f,
                            float eps = 1e-2f, float tol = 2e-2f) {
  Tensor out = f();
  out.Backward();
  const auto gx = x.grad();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const float up = f().item();
    x.at(i) = orig - eps;
    const float down = f().item();
    x.at(i) = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(gx[static_cast<size_t>(i)], numeric,
                tol * std::max(1.0f, std::abs(numeric)))
        << "entry " << i;
  }
}

}  // namespace

TEST_P(AutogradPropertyTest, NumericalGradientOfDiv) {
  Rng rng(GetParam());
  Tensor a = Tensor::Randn({3, 4}, rng, 0.6f, true);
  // Denominator bounded away from zero so finite differences stay sane.
  Tensor b = Tensor::Randn({3, 4}, rng, 0.4f, true);
  for (int64_t i = 0; i < b.numel(); ++i) {
    b.at(i) = (b.at(i) >= 0.0f ? 1.5f : -1.5f) + b.at(i);
  }
  auto f = [&]() { return Mean(Div(a, b)); };
  CheckNumericalGradient(a, f);
  CheckNumericalGradient(b, f);
}

TEST_P(AutogradPropertyTest, NumericalGradientOfSqrt) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({3, 4}, rng, 0.5f, true);
  // Sqrt needs strictly positive inputs, away from the eps used by the
  // finite difference.
  for (int64_t i = 0; i < x.numel(); ++i) x.at(i) = 0.5f + x.at(i) * x.at(i);
  CheckNumericalGradient(x, [&]() { return Mean(Sqrt(x)); });
}

TEST_P(AutogradPropertyTest, NumericalGradientOfSliceCols) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({4, 6}, rng, 0.8f, true);
  Tensor scale = Tensor::Randn({4, 3}, rng, 1.0f, false);
  CheckNumericalGradient(
      x, [&]() { return Mean(Mul(SliceCols(x, 2, 3), scale)); });
}

TEST_P(AutogradPropertyTest, NumericalGradientOfConcatRows) {
  Rng rng(GetParam());
  Tensor a = Tensor::Randn({2, 5}, rng, 0.8f, true);
  Tensor b = Tensor::Randn({3, 5}, rng, 0.8f, true);
  Tensor scale = Tensor::Randn({5, 5}, rng, 1.0f, false);
  auto f = [&]() { return Mean(Mul(ConcatRows({a, b}), scale)); };
  CheckNumericalGradient(a, f);
  CheckNumericalGradient(b, f);
}

TEST_P(AutogradPropertyTest, BackwardTwiceGivesIdenticalGradients) {
  Rng rng(GetParam());
  Tensor x = Tensor::Randn({4, 4}, rng, 1.0f, true);
  Tensor loss1 = Sum(Square(Tanh(x)));
  loss1.Backward();
  const auto g1 = x.grad();
  Tensor loss2 = Sum(Square(Tanh(x)));
  loss2.Backward();
  EXPECT_EQ(x.grad(), g1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace rrre::tensor
