// Property-style parameterized tests of the synthetic corpus generator:
// structural invariants that must hold for every dataset profile.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "graph/mrf.h"

namespace rrre::data {
namespace {

using common::Rng;

class ProfilePropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  DatasetProfile Profile(double scale = 0.12) const {
    auto p = ProfileByName(GetParam(), scale);
    EXPECT_TRUE(p.ok());
    return std::move(p).ValueOrDie();
  }
};

TEST_P(ProfilePropertyTest, GeneratedCorpusRespectsUniverse) {
  Rng rng(1);
  const DatasetProfile profile = Profile();
  ReviewDataset ds = GenerateSyntheticDataset(profile, rng);
  EXPECT_EQ(ds.num_users(), profile.num_users);
  EXPECT_EQ(ds.num_items(), profile.num_items);
  for (const Review& r : ds.reviews()) {
    EXPECT_GE(r.user, 0);
    EXPECT_LT(r.user, profile.num_users);
    EXPECT_GE(r.item, 0);
    EXPECT_LT(r.item, profile.num_items);
    EXPECT_GE(r.rating, 1.0f);
    EXPECT_LE(r.rating, 5.0f);
    EXPECT_GE(r.timestamp, 0);
    EXPECT_FALSE(r.text.empty());
  }
}

TEST_P(ProfilePropertyTest, LabeledFakeFractionNearProfileTarget) {
  Rng rng(2);
  const DatasetProfile profile = Profile(0.3);
  ReviewDataset ds = GenerateSyntheticDataset(profile, rng);
  EXPECT_NEAR(ds.Stats().fake_fraction, profile.fake_fraction, 0.035);
}

TEST_P(ProfilePropertyTest, DeterministicGivenSeed) {
  const DatasetProfile profile = Profile(0.05);
  Rng r1(3);
  Rng r2(3);
  ReviewDataset a = GenerateSyntheticDataset(profile, r1);
  ReviewDataset b = GenerateSyntheticDataset(profile, r2);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.review(i).user, b.review(i).user);
    EXPECT_EQ(a.review(i).item, b.review(i).item);
    EXPECT_EQ(a.review(i).rating, b.review(i).rating);
    EXPECT_EQ(a.review(i).label, b.review(i).label);
    EXPECT_EQ(a.review(i).text, b.review(i).text);
  }
}

TEST_P(ProfilePropertyTest, DifferentSeedsProduceDifferentCorpora) {
  const DatasetProfile profile = Profile(0.05);
  Rng r1(4);
  Rng r2(5);
  ReviewDataset a = GenerateSyntheticDataset(profile, r1);
  ReviewDataset b = GenerateSyntheticDataset(profile, r2);
  bool differs = a.size() != b.size();
  for (int64_t i = 0; !differs && i < std::min(a.size(), b.size()); ++i) {
    differs = a.review(i).text != b.review(i).text;
  }
  EXPECT_TRUE(differs);
}

TEST_P(ProfilePropertyTest, SplitIsAPartition) {
  Rng rng(6);
  ReviewDataset ds = GenerateSyntheticDataset(Profile(), rng);
  auto [train, test] = ds.Split(0.7, rng);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  // Multiset of (user, item, timestamp, rating) must be preserved.
  auto key = [](const Review& r) {
    return std::make_tuple(r.user, r.item, r.timestamp, r.rating, r.text);
  };
  std::multiset<std::tuple<int64_t, int64_t, int64_t, float, std::string>>
      whole, parts;
  for (const Review& r : ds.reviews()) whole.insert(key(r));
  for (const Review& r : train.reviews()) parts.insert(key(r));
  for (const Review& r : test.reviews()) parts.insert(key(r));
  EXPECT_EQ(whole, parts);
}

TEST_P(ProfilePropertyTest, SaveLoadRoundTripsWholeCorpus) {
  Rng rng(7);
  ReviewDataset ds = GenerateSyntheticDataset(Profile(0.05), rng);
  const std::string path =
      ::testing::TempDir() + "/prop_" + GetParam() + ".tsv";
  ASSERT_TRUE(ds.SaveTsv(path).ok());
  auto loaded = ReviewDataset::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), ds.size());
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.value().review(i).text, ds.review(i).text);
    EXPECT_EQ(loaded.value().review(i).label, ds.review(i).label);
  }
  std::remove(path.c_str());
}

TEST_P(ProfilePropertyTest, IndexesAreConsistentWithReviews) {
  Rng rng(8);
  ReviewDataset ds = GenerateSyntheticDataset(Profile(0.08), rng);
  int64_t via_users = 0;
  for (int64_t u = 0; u < ds.num_users(); ++u) {
    for (int64_t idx : ds.ReviewsByUser(u)) {
      EXPECT_EQ(ds.review(idx).user, u);
      ++via_users;
    }
  }
  EXPECT_EQ(via_users, ds.size());
  int64_t via_items = 0;
  for (int64_t i = 0; i < ds.num_items(); ++i) {
    int64_t prev_ts = -1;
    for (int64_t idx : ds.ReviewsByItem(i)) {
      EXPECT_EQ(ds.review(idx).item, i);
      EXPECT_GE(ds.review(idx).timestamp, prev_ts);  // Time-sorted.
      prev_ts = ds.review(idx).timestamp;
      ++via_items;
    }
  }
  EXPECT_EQ(via_items, ds.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfilePropertyTest,
    ::testing::Values("yelpchi", "yelpnyc", "yelpzip", "musics", "cds"));

}  // namespace
}  // namespace rrre::data

namespace rrre::graph {
namespace {

/// BP must be exact on randomly generated trees, whatever their shape.
class TreeBpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeBpPropertyTest, LoopyBpMatchesExactMarginalsOnRandomTrees) {
  common::Rng rng(GetParam());
  PairwiseMrf mrf;
  const int64_t n = 2 + static_cast<int64_t>(rng.UniformInt(uint64_t{8}));
  for (int64_t v = 0; v < n; ++v) {
    const double p = rng.Uniform(0.1, 0.9);
    mrf.AddNode({p, 1.0 - p});
  }
  for (int64_t v = 1; v < n; ++v) {
    const int64_t parent = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(v)));
    const double eps = rng.Uniform(0.05, 0.45);
    const bool attractive = rng.Bernoulli(0.5);
    PairwiseMrf::Potential pot =
        attractive
            ? PairwiseMrf::Potential{{{1 - eps, eps}, {eps, 1 - eps}}}
            : PairwiseMrf::Potential{{{eps, 1 - eps}, {1 - eps, eps}}};
    mrf.AddEdge(parent, v, pot);
  }
  auto bp = mrf.RunLoopyBp(300, 0.0, 1e-11);
  auto exact = mrf.ExactMarginals();
  ASSERT_TRUE(bp.converged);
  for (size_t v = 0; v < exact.size(); ++v) {
    EXPECT_NEAR(bp.beliefs[v][0], exact[v][0], 1e-6) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeBpPropertyTest,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u, 60u, 70u,
                                           80u));

}  // namespace
}  // namespace rrre::graph
