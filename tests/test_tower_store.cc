// Tests of the materialized tower store (core/tower_store.h).
//
// Two halves, mirroring how PR 2 hardened the checkpoint format:
//
//  * TowerStoreFormatTest — no model anywhere: hand-built store files, a
//    corruption corpus (truncation at every prefix length, single-bit flips
//    over every byte of header and payload, bad magic, dim/count overflow,
//    trailing garbage), and failpoint/crash coverage of the publish seam.
//    Every corrupt file must be rejected with a clean Status — never UB —
//    which is what the ASan leg of tools/check.sh verifies.
//
//  * TowerStoreServingTest — a trained checkpoint: store-backed scores must
//    be bitwise identical to live-tower scores for every (user, item) pair,
//    across thread counts and a build/reload cycle; catalog TSV output must
//    be byte-identical to offline rrre_serve; and the MicroBatcher must
//    swap store + params together — a torn or stale store fails the reload
//    and the old snapshot keeps serving.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "core/scorer.h"
#include "core/serving.h"
#include "core/tower_store.h"
#include "core/trainer.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "serve/batcher.h"
#include "tensor/serialize.h"

namespace rrre {
namespace {

using common::Rng;
using common::Status;
namespace failpoint = common::failpoint;

// ---------------------------------------------------------------------------
// Format half: hand-built stores, no model required
// ---------------------------------------------------------------------------

constexpr int64_t kDim = 2;
constexpr int64_t kNumUsers = 3;
constexpr int64_t kNumItems = 2;
constexpr uint64_t kFingerprint = 0xfeedface12345678ull;
constexpr size_t kHeaderBytes = 64;
// 64-byte header + 3*2 user floats + 2*2 item floats.
constexpr size_t kFileBytes = kHeaderBytes + 24 + 16;

std::vector<float> SmallUsers() {
  return {1.5f, -2.25f, 0.0f, 3.75f, -0.5f, 8.0f};
}
std::vector<float> SmallItems() { return {0.25f, -1.0f, 2.0f, -4.5f}; }

class TowerStoreFormatTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  /// Writes the canonical small store and returns its path.
  static std::string WriteSmall(const std::string& name) {
    const std::string path = TempPath(name);
    RRRE_CHECK_OK(core::TowerStore::WriteFile(path, kDim, kNumUsers, kNumItems,
                                              kFingerprint, SmallUsers(),
                                              SmallItems()));
    return path;
  }

  static std::string ReadBytes(const std::string& path) {
    auto bytes = common::ReadFile(path);
    RRRE_CHECK_OK(bytes.status());
    return std::move(bytes).ValueOrDie();
  }

  /// Raw non-atomic overwrite — these tests *produce* corrupt files.
  static void WriteRaw(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    RRRE_CHECK(out.good()) << "cannot write " << path;
  }

  template <typename T>
  static void Patch(std::string& bytes, size_t offset, T value) {
    std::memcpy(bytes.data() + offset, &value, sizeof(T));
  }

  /// Recomputes the header CRC after a deliberate field patch, so the test
  /// reaches the *structural* validation behind it instead of tripping the
  /// CRC first.
  static std::string Resign(std::string bytes) {
    const uint32_t crc =
        tensor::Crc32(bytes.data() + 12, kHeaderBytes - 12);
    std::memcpy(bytes.data() + 8, &crc, sizeof(crc));
    return bytes;
  }

  static void ExpectRejected(const std::string& path,
                             const std::string& what) {
    auto store = core::TowerStore::Map(path);
    ASSERT_FALSE(store.ok()) << "corrupt store mapped OK (" << what << ")";
    if (!what.empty()) {
      EXPECT_NE(store.status().message().find(what), std::string::npos)
          << store.status().ToString();
    }
  }
};

TEST_F(TowerStoreFormatTest, RoundTripsBitwiseWithExactGeometry) {
  const std::string path = WriteSmall("fmt_roundtrip.tws");
  EXPECT_EQ(ReadBytes(path).size(), kFileBytes);
  auto store = core::TowerStore::Map(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->dim(), kDim);
  EXPECT_EQ(store.value()->num_users(), kNumUsers);
  EXPECT_EQ(store.value()->num_items(), kNumItems);
  EXPECT_EQ(store.value()->params_fingerprint(), kFingerprint);
  const auto users = SmallUsers();
  const auto items = SmallItems();
  for (int64_t u = 0; u < kNumUsers; ++u) {
    EXPECT_EQ(std::memcmp(store.value()->user_profile(u),
                          users.data() + u * kDim, kDim * sizeof(float)),
              0);
  }
  for (int64_t i = 0; i < kNumItems; ++i) {
    EXPECT_EQ(std::memcmp(store.value()->item_profile(i),
                          items.data() + i * kDim, kDim * sizeof(float)),
              0);
  }
}

TEST_F(TowerStoreFormatTest, ZeroCountSectionsAreValid) {
  // A corpus with ids but no users (or no items) is degenerate but legal;
  // validation must not reject byte-exact empty sections.
  const std::string path = TempPath("fmt_zero.tws");
  ASSERT_TRUE(core::TowerStore::WriteFile(path, kDim, 0, kNumItems,
                                          kFingerprint, {}, SmallItems())
                  .ok());
  auto store = core::TowerStore::Map(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->num_users(), 0);
  EXPECT_EQ(store.value()->num_items(), kNumItems);
}

TEST_F(TowerStoreFormatTest, WriteFileValidatesArguments) {
  const std::string path = TempPath("fmt_args.tws");
  // dim out of range.
  EXPECT_FALSE(core::TowerStore::WriteFile(path, 0, kNumUsers, kNumItems,
                                           kFingerprint, {}, {})
                   .ok());
  EXPECT_FALSE(core::TowerStore::WriteFile(path, int64_t{1} << 20, 1, 1,
                                           kFingerprint, {}, {})
                   .ok());
  // Negative counts.
  EXPECT_FALSE(core::TowerStore::WriteFile(path, kDim, -1, kNumItems,
                                           kFingerprint, {}, SmallItems())
                   .ok());
  // Payload size disagrees with the declared geometry.
  EXPECT_FALSE(core::TowerStore::WriteFile(path, kDim, kNumUsers, kNumItems,
                                           kFingerprint, SmallUsers(),
                                           SmallUsers())
                   .ok());
  EXPECT_NE(::access(path.c_str(), F_OK), 0) << "rejected write left a file";
}

TEST_F(TowerStoreFormatTest, MissingFileIsACleanError) {
  auto store = core::TowerStore::Map(TempPath("does_not_exist.tws"));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), common::StatusCode::kIoError);
}

TEST_F(TowerStoreFormatTest, TruncationAtEveryPrefixLengthIsRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_trunc_src.tws"));
  ASSERT_EQ(good.size(), kFileBytes);
  const std::string path = TempPath("fmt_trunc.tws");
  for (size_t keep = 0; keep < good.size(); ++keep) {
    WriteRaw(path, good.substr(0, keep));
    auto store = core::TowerStore::Map(path);
    ASSERT_FALSE(store.ok()) << "prefix of " << keep << " bytes mapped OK";
  }
}

TEST_F(TowerStoreFormatTest, EverySingleBitFlipInTheHeaderIsRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_flip_hdr_src.tws"));
  const std::string path = TempPath("fmt_flip_hdr.tws");
  for (size_t byte = 0; byte < kHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      WriteRaw(path, bad);
      auto store = core::TowerStore::Map(path);
      ASSERT_FALSE(store.ok())
          << "header bit flip at byte " << byte << " bit " << bit
          << " mapped OK";
    }
  }
}

TEST_F(TowerStoreFormatTest, EverySingleBitFlipInThePayloadIsRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_flip_pay_src.tws"));
  const std::string path = TempPath("fmt_flip_pay.tws");
  for (size_t byte = kHeaderBytes; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      WriteRaw(path, bad);
      auto store = core::TowerStore::Map(path);
      ASSERT_FALSE(store.ok())
          << "payload bit flip at byte " << byte << " bit " << bit
          << " mapped OK";
      EXPECT_NE(store.status().message().find("CRC mismatch"),
                std::string::npos)
          << store.status().ToString();
    }
  }
}

TEST_F(TowerStoreFormatTest, BadMagicIsRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_magic_src.tws"));
  const std::string path = TempPath("fmt_magic.tws");
  std::string bad = good;
  std::memcpy(bad.data(), "WRONGMAG", 8);
  WriteRaw(path, bad);
  ExpectRejected(path, "bad magic");
  // A plausible sibling format (same family, wrong version) too.
  std::memcpy(bad.data(), "RRRETWS2", 8);
  WriteRaw(path, bad);
  ExpectRejected(path, "bad magic");
}

TEST_F(TowerStoreFormatTest, OverflowSizedDimAndCountsAreRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_overflow_src.tws"));
  const std::string path = TempPath("fmt_overflow.tws");

  struct Case {
    size_t offset;
    uint64_t value;
    size_t width;  ///< 4 = u32 dim, 8 = i64 count.
    const char* what;
  };
  const Case cases[] = {
      // dim (u32 at 12): zero, just past the bound, u32 max.
      {12, 0, 4, "dim out of range"},
      {12, (uint64_t{1} << 16) + 1, 4, "dim out of range"},
      {12, 0xffffffffull, 4, "dim out of range"},
      // num_users (i64 at 16): 2^40-style, past 2^31, negative.
      {16, uint64_t{1} << 40, 8, "user count out of range"},
      {16, (uint64_t{1} << 31) + 1, 8, "user count out of range"},
      {16, static_cast<uint64_t>(-1), 8, "user count out of range"},
      // num_items (i64 at 24): same family.
      {24, uint64_t{1} << 40, 8, "item count out of range"},
      {24, static_cast<uint64_t>(int64_t{-5}), 8, "item count out of range"},
  };
  for (const Case& c : cases) {
    std::string bad = good;
    if (c.width == 4) {
      Patch(bad, c.offset, static_cast<uint32_t>(c.value));
    } else {
      Patch(bad, c.offset, c.value);
    }
    // Re-sign the header so the *bounds check* rejects it, proving the
    // size arithmetic is guarded even when the CRC has been forged.
    WriteRaw(path, Resign(std::move(bad)));
    ExpectRejected(path, c.what);
  }

  // Both counts hostile at once — the 2^40 * 2^40 * dim product would
  // overflow int64 if validation multiplied before bounding.
  std::string bad = good;
  Patch(bad, size_t{16}, uint64_t{1} << 40);
  Patch(bad, size_t{24}, uint64_t{1} << 40);
  WriteRaw(path, Resign(std::move(bad)));
  ExpectRejected(path, "count out of range");
}

TEST_F(TowerStoreFormatTest, ForgedCountWithValidCrcFailsTheSizeCheck) {
  // In-bounds but wrong count, CRC re-signed: only the byte-exact file-size
  // check stands between this header and a wild read past the mapping.
  const std::string good = ReadBytes(WriteSmall("fmt_forged_src.tws"));
  const std::string path = TempPath("fmt_forged.tws");
  std::string bad = good;
  Patch(bad, size_t{16}, int64_t{kNumUsers + 1});
  WriteRaw(path, Resign(std::move(bad)));
  ExpectRejected(path, "truncated payload");

  bad = good;
  Patch(bad, size_t{16}, int64_t{kNumUsers - 1});
  WriteRaw(path, Resign(std::move(bad)));
  ExpectRejected(path, "trailing garbage");
}

TEST_F(TowerStoreFormatTest, TrailingGarbageIsRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_trailing_src.tws"));
  const std::string path = TempPath("fmt_trailing.tws");
  for (const size_t extra : {size_t{1}, size_t{7}, size_t{4096}}) {
    WriteRaw(path, good + std::string(extra, '\xab'));
    ExpectRejected(path, "trailing garbage");
  }
}

TEST_F(TowerStoreFormatTest, NonZeroReservedBytesAreRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_reserved_src.tws"));
  const std::string path = TempPath("fmt_reserved.tws");
  for (const size_t offset : {size_t{48}, size_t{55}, size_t{63}}) {
    std::string bad = good;
    bad[offset] = 1;
    WriteRaw(path, Resign(std::move(bad)));
    ExpectRejected(path, "reserved");
  }
}

TEST_F(TowerStoreFormatTest, SwappedSectionCrcsAreRejected) {
  const std::string good = ReadBytes(WriteSmall("fmt_swap_src.tws"));
  const std::string path = TempPath("fmt_swap.tws");
  std::string bad = good;
  char tmp[4];
  std::memcpy(tmp, bad.data() + 40, 4);
  std::memcpy(bad.data() + 40, bad.data() + 44, 4);
  std::memcpy(bad.data() + 44, tmp, 4);
  WriteRaw(path, Resign(std::move(bad)));
  ExpectRejected(path, "CRC mismatch");
}

// ---------------------------------------------------------------------------
// Publish seam under injected faults (failpoint family "store")
// ---------------------------------------------------------------------------

TEST_F(TowerStoreFormatTest, WriteFailureLeavesThePreviousStoreIntact) {
  const std::string path = WriteSmall("fmt_fp_write.tws");
  const std::string before = ReadBytes(path);

  failpoint::Arm("store.write");  // Default action: injected I/O error.
  const std::vector<float> other_users(SmallUsers().size(), 9.0f);
  const Status failed =
      core::TowerStore::WriteFile(path, kDim, kNumUsers, kNumItems,
                                  kFingerprint + 1, other_users, SmallItems());
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("store.write"), std::string::npos);

  // Nothing published, nothing leaked: old bytes under the final name, no
  // stray tmp.
  EXPECT_EQ(ReadBytes(path), before);
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  auto store = core::TowerStore::Map(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->params_fingerprint(), kFingerprint);
}

TEST_F(TowerStoreFormatTest, TornWriteNeverReachesTheFinalName) {
  const std::string path = WriteSmall("fmt_fp_torn.tws");
  const std::string before = ReadBytes(path);

  // Fire on the second evaluation (the user payload), landing 8 bytes of it
  // in the tmp file before failing — a torn mid-payload write.
  failpoint::Config torn;
  torn.action = failpoint::Action::kShortIo;
  torn.arg = 8;
  torn.after = 1;
  torn.count = 1;
  failpoint::Arm("store.write", torn);
  const Status failed = core::TowerStore::WriteFile(
      path, kDim, kNumUsers, kNumItems, kFingerprint + 1,
      std::vector<float>(SmallUsers().size(), 7.0f), SmallItems());
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failpoint::FireCount("store.write"), 0)  // Counters discarded.
      << "DisarmAll should reset counters";
  EXPECT_EQ(ReadBytes(path), before);
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
}

TEST_F(TowerStoreFormatTest, FsyncAndRenameFailuresLeaveTheOldStore) {
  const std::string path = WriteSmall("fmt_fp_commit.tws");
  const std::string before = ReadBytes(path);
  for (const char* point : {"store.open", "store.fsync", "store.rename"}) {
    failpoint::Arm(point);
    const Status failed = core::TowerStore::WriteFile(
        path, kDim, kNumUsers, kNumItems, kFingerprint + 1,
        std::vector<float>(SmallUsers().size(), 4.0f), SmallItems());
    failpoint::DisarmAll();
    ASSERT_FALSE(failed.ok()) << point;
    EXPECT_NE(failed.ToString().find(point), std::string::npos);
    EXPECT_EQ(ReadBytes(path), before) << point;
    EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0) << point;
  }
}

TEST_F(TowerStoreFormatTest, MmapFailpointSurfacesAsACleanMapError) {
  const std::string path = WriteSmall("fmt_fp_mmap.tws");
  failpoint::Arm("store.mmap");
  auto store = core::TowerStore::Map(path);
  failpoint::DisarmAll();
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("store.mmap"), std::string::npos);
  // Disarmed, the very same file maps fine.
  EXPECT_TRUE(core::TowerStore::Map(path).ok());
}

TEST_F(TowerStoreFormatTest, CrashMidPublishLeavesThePreviousStoreIntact) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = WriteSmall("fmt_crash_write.tws");
  const std::string before = ReadBytes(path);
  // Simulated power loss while streaming the replacement's payload: the
  // child dies inside WriteFile with no cleanup at all.
  EXPECT_EXIT(
      {
        failpoint::Config crash;
        crash.action = failpoint::Action::kCrash;
        crash.after = 1;  // Header lands; the user payload crashes.
        failpoint::Arm("store.write", crash);
        const Status status = core::TowerStore::WriteFile(
            path, kDim, kNumUsers, kNumItems, kFingerprint + 1,
            std::vector<float>(SmallUsers().size(), 6.0f), SmallItems());
        (void)status;  // Unreachable: the failpoint exits first.
        std::exit(1);
      },
      ::testing::ExitedWithCode(137), "");
  // Only a stray tmp may exist; the published store is whole and old.
  EXPECT_EQ(ReadBytes(path), before);
  auto store = core::TowerStore::Map(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->params_fingerprint(), kFingerprint);
}

TEST_F(TowerStoreFormatTest, CrashAtRenameLeavesEitherOldOrNewNeverTorn) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = WriteSmall("fmt_crash_rename.tws");
  const std::string before = ReadBytes(path);
  EXPECT_EXIT(
      {
        failpoint::Config crash;
        crash.action = failpoint::Action::kCrash;
        failpoint::Arm("store.rename", crash);
        const Status status = core::TowerStore::WriteFile(
            path, kDim, kNumUsers, kNumItems, kFingerprint + 1,
            std::vector<float>(SmallUsers().size(), 2.0f), SmallItems());
        (void)status;
        std::exit(1);
      },
      ::testing::ExitedWithCode(137), "");
  // Crash fired before the rename: the old store must still be the one
  // visible under the final name, fully intact and mappable.
  EXPECT_EQ(ReadBytes(path), before);
  EXPECT_TRUE(core::TowerStore::Map(path).ok());
}

// ---------------------------------------------------------------------------
// Serving half: bitwise equivalence against live towers
// ---------------------------------------------------------------------------

core::RrreConfig TinyConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

/// Restores the global pool size on scope exit, so a failing assertion in a
/// thread-count sweep cannot leak a resized pool into later tests.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(common::ThreadPool::GlobalSize()) {}
  ~PoolSizeGuard() { common::ThreadPool::SetGlobalSize(saved_); }

 private:
  int saved_;
};

class TowerStoreServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(27);
    corpus_ = new data::ReviewDataset(
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng));
    // ctest runs every test as its own process, concurrently: the fixture
    // paths must be per-process or parallel tests race on the checkpoint.
    prefix_ = new std::string(::testing::TempDir() + "/tws_ckpt_" +
                              std::to_string(::getpid()));
    {
      core::RrreTrainer fitter(TinyConfig());
      fitter.Fit(*corpus_);
      ASSERT_TRUE(fitter.Save(*prefix_).ok());
    }
    // Everything downstream — the store build, the live reference, the
    // server — works from a *loaded* trainer, exactly like production.
    trainer_ = new core::RrreTrainer(TinyConfig());
    ASSERT_TRUE(trainer_->Load(*prefix_).ok());
    store_path_ = new std::string(*prefix_ + ".tower_store");
    auto built = core::BuildTowerStore(*trainer_, *prefix_, *store_path_);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_EQ(built.value().num_users, trainer_->train_data().num_users());
    EXPECT_EQ(built.value().num_items, trainer_->train_data().num_items());
  }

  static void TearDownTestSuite() {
    for (const char* suffix : {".model", ".vocab", ".train.tsv", ".meta",
                               ".optimizer", ".tower_store"}) {
      std::remove((*prefix_ + suffix).c_str());
    }
    delete trainer_;
    delete corpus_;
    delete prefix_;
    delete store_path_;
    trainer_ = nullptr;
    corpus_ = nullptr;
    prefix_ = nullptr;
    store_path_ = nullptr;
  }

  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  /// Every (user, item) pair of the corpus — the full test corpus the
  /// acceptance criteria demand bitwise identity over.
  static std::vector<std::pair<int64_t, int64_t>> AllPairs() {
    std::vector<std::pair<int64_t, int64_t>> pairs;
    const int64_t num_users = trainer_->train_data().num_users();
    const int64_t num_items = trainer_->train_data().num_items();
    pairs.reserve(static_cast<size_t>(num_users * num_items));
    for (int64_t u = 0; u < num_users; ++u) {
      for (int64_t i = 0; i < num_items; ++i) pairs.emplace_back(u, i);
    }
    return pairs;
  }

  static std::shared_ptr<const core::TowerStore> MapFixtureStore() {
    auto store =
        core::MapTowerStoreForCheckpoint(*store_path_, *prefix_, *trainer_);
    RRRE_CHECK_OK(store.status());
    return std::move(store).ValueOrDie();
  }

  /// Scores one pair through the batcher and blocks for the result.
  static serve::MicroBatcher::ScoredPair ScoreSync(serve::MicroBatcher& b,
                                                   int64_t user,
                                                   int64_t item) {
    std::promise<serve::MicroBatcher::ScoredPair> done;
    RRRE_CHECK(b.TrySubmit(
        user, item,
        [&done](const Status& status,
                const std::vector<serve::MicroBatcher::ScoredPair>& results) {
          RRRE_CHECK_OK(status);
          RRRE_CHECK_EQ(static_cast<int64_t>(results.size()), int64_t{1});
          done.set_value(results[0]);
        }));
    return done.get_future().get();
  }

  static Status ReloadSync(serve::MicroBatcher& b, const std::string& prefix) {
    std::promise<Status> done;
    b.RequestReload(prefix, [&done](const Status& status, int64_t) {
      done.set_value(status);
    });
    return done.get_future().get();
  }

  static data::ReviewDataset* corpus_;
  static core::RrreTrainer* trainer_;
  static std::string* prefix_;
  static std::string* store_path_;
};

data::ReviewDataset* TowerStoreServingTest::corpus_ = nullptr;
core::RrreTrainer* TowerStoreServingTest::trainer_ = nullptr;
std::string* TowerStoreServingTest::prefix_ = nullptr;
std::string* TowerStoreServingTest::store_path_ = nullptr;

TEST_F(TowerStoreServingTest, StoreBindsToTheCheckpointFingerprint) {
  auto store = MapFixtureStore();
  auto fingerprint = core::CheckpointParamsFingerprint(*prefix_);
  ASSERT_TRUE(fingerprint.ok());
  EXPECT_EQ(store->params_fingerprint(), fingerprint.value());
  EXPECT_EQ(store->dim(), TinyConfig().rev_dim);
}

TEST_F(TowerStoreServingTest,
       StoreScoresBitwiseIdenticalToLiveTowersAcrossThreadCounts) {
  const auto pairs = AllPairs();
  PoolSizeGuard guard;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    common::ThreadPool::SetGlobalSize(threads);

    core::BatchScorer live(trainer_);
    const auto live_preds = live.Score(pairs);

    core::BatchScorer stored(trainer_);
    stored.AttachStore(MapFixtureStore());
    ASSERT_TRUE(stored.store_backed());
    const auto store_preds = stored.Score(pairs);

    // Bitwise, not approximate: the store holds exactly the bytes the
    // towers produce, and the FM head is row-independent.
    ASSERT_EQ(live_preds.ratings.size(), store_preds.ratings.size());
    EXPECT_EQ(live_preds.ratings, store_preds.ratings);
    EXPECT_EQ(live_preds.reliabilities, store_preds.reliabilities);
    // Zero tower work on the store path.
    EXPECT_EQ(stored.cached_users(), 0);
    EXPECT_EQ(stored.cached_items(), 0);
  }
}

TEST_F(TowerStoreServingTest, BuildIsBitwiseDeterministicAcrossThreadCounts) {
  PoolSizeGuard guard;
  common::ThreadPool::SetGlobalSize(1);
  const std::string path1 = TempPath("tws_build_t1.tws");
  ASSERT_TRUE(core::BuildTowerStore(*trainer_, *prefix_, path1).ok());
  common::ThreadPool::SetGlobalSize(4);
  const std::string path4 = TempPath("tws_build_t4.tws");
  ASSERT_TRUE(core::BuildTowerStore(*trainer_, *prefix_, path4).ok());

  auto bytes1 = common::ReadFile(path1);
  auto bytes4 = common::ReadFile(path4);
  auto fixture = common::ReadFile(*store_path_);
  ASSERT_TRUE(bytes1.ok() && bytes4.ok() && fixture.ok());
  EXPECT_EQ(bytes1.value(), bytes4.value());
  EXPECT_EQ(bytes1.value(), fixture.value());
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST_F(TowerStoreServingTest, BuildReloadCycleKeepsBitwiseIdentity) {
  const auto pairs = AllPairs();
  core::BatchScorer live(trainer_);
  const auto reference = live.Score(pairs);

  // Cycle 1: fresh build, fresh map, fresh loaded trainer.
  const std::string path = TempPath("tws_cycle.tws");
  ASSERT_TRUE(core::BuildTowerStore(*trainer_, *prefix_, path).ok());
  core::RrreTrainer reloaded(TinyConfig());
  ASSERT_TRUE(reloaded.Load(*prefix_).ok());
  {
    auto store = core::MapTowerStoreForCheckpoint(path, *prefix_, reloaded);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    core::BatchScorer scorer(&reloaded);
    scorer.AttachStore(std::move(store).ValueOrDie());
    const auto preds = scorer.Score(pairs);
    EXPECT_EQ(reference.ratings, preds.ratings);
    EXPECT_EQ(reference.reliabilities, preds.reliabilities);
  }

  // Cycle 2: republish over the same path (atomic replace) and re-map.
  ASSERT_TRUE(core::BuildTowerStore(reloaded, *prefix_, path).ok());
  {
    auto store = core::MapTowerStoreForCheckpoint(path, *prefix_, reloaded);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    core::BatchScorer scorer(&reloaded);
    scorer.AttachStore(std::move(store).ValueOrDie());
    const auto preds = scorer.Score(pairs);
    EXPECT_EQ(reference.ratings, preds.ratings);
    EXPECT_EQ(reference.reliabilities, preds.reliabilities);
  }
  std::remove(path.c_str());
}

TEST_F(TowerStoreServingTest, InvalidateDetachesTheStore) {
  core::BatchScorer scorer(trainer_);
  scorer.AttachStore(MapFixtureStore());
  ASSERT_TRUE(scorer.store_backed());
  scorer.Invalidate();
  EXPECT_FALSE(scorer.store_backed());
  // Live towers take over seamlessly after the detach.
  const auto preds = scorer.Score({{0, 0}});
  EXPECT_EQ(preds.ratings.size(), 1u);
}

TEST_F(TowerStoreServingTest, BuildRequiresDeterministicHistorySampling) {
  core::RrreConfig config = TinyConfig();
  config.sampling = data::SamplingStrategy::kRandom;
  core::RrreTrainer random_trainer(config);
  ASSERT_TRUE(random_trainer.Load(*prefix_).ok());
  auto built = core::BuildTowerStore(random_trainer, *prefix_,
                                     TempPath("tws_random.tws"));
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(TowerStoreServingTest, StaleCheckpointFingerprintIsRejected) {
  // A checkpoint whose parameter bytes differ by one appended byte: same
  // geometry, different fingerprint — the stale-store scenario a plain
  // structural check would miss.
  auto model_bytes = common::ReadFile(*prefix_ + ".model");
  ASSERT_TRUE(model_bytes.ok());
  const std::string stale_prefix = TempPath("tws_stale");
  ASSERT_TRUE(
      common::WriteFile(stale_prefix + ".model", model_bytes.value() + "x")
          .ok());
  auto store =
      core::MapTowerStoreForCheckpoint(*store_path_, stale_prefix, *trainer_);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(store.status().message().find("different model parameters"),
            std::string::npos);
  std::remove((stale_prefix + ".model").c_str());
}

TEST_F(TowerStoreServingTest, GeometryMismatchIsRejectedEvenWithFreshParams) {
  // Right fingerprint, wrong shape: a store for some other corpus must not
  // attach even if it was built from the same parameter bytes.
  auto fingerprint = core::CheckpointParamsFingerprint(*prefix_);
  ASSERT_TRUE(fingerprint.ok());
  const std::string path = TempPath("tws_geometry.tws");
  ASSERT_TRUE(core::TowerStore::WriteFile(path, 2, 3, 2, fingerprint.value(),
                                          SmallUsers(), SmallItems())
                  .ok());
  auto store = core::MapTowerStoreForCheckpoint(path, *prefix_, *trainer_);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(store.status().message().find("rev_dim"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TowerStoreServingTest, CatalogTsvByteIdenticalToOfflineServe) {
  // Catalog-mode requests over every user, served live and store-backed:
  // the two output files must match byte for byte.
  std::string requests = "user\n";
  for (int64_t u = 0; u < trainer_->train_data().num_users(); ++u) {
    requests += std::to_string(u) + "\n";
  }
  const std::string in = TempPath("tws_catalog_req.tsv");
  ASSERT_TRUE(common::WriteFile(in, requests).ok());

  core::ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = in;
  options.catalog = true;

  options.output_path = TempPath("tws_catalog_live.tsv");
  auto live = core::LoadAndServe(TinyConfig(), options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_FALSE(live.value().store_backed);

  options.output_path = TempPath("tws_catalog_store.tsv");
  options.store_path = *store_path_;
  auto stored = core::LoadAndServe(TinyConfig(), options);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_TRUE(stored.value().store_backed);
  EXPECT_EQ(stored.value().num_scored, live.value().num_scored);

  auto live_bytes = common::ReadFile(TempPath("tws_catalog_live.tsv"));
  auto store_bytes = common::ReadFile(TempPath("tws_catalog_store.tsv"));
  ASSERT_TRUE(live_bytes.ok() && store_bytes.ok());
  EXPECT_EQ(live_bytes.value(), store_bytes.value());
  std::remove(TempPath("tws_catalog_req.tsv").c_str());
  std::remove(TempPath("tws_catalog_live.tsv").c_str());
  std::remove(TempPath("tws_catalog_store.tsv").c_str());
}

TEST_F(TowerStoreServingTest, ServeBatchRejectsACorruptStoreUpFront) {
  const std::string bad = TempPath("tws_serve_bad.tws");
  ASSERT_TRUE(common::WriteFile(bad, "not a tower store").ok());
  core::ServeOptions options;
  options.model_prefix = *prefix_;
  options.input_path = TempPath("tws_serve_bad_req.tsv");
  ASSERT_TRUE(common::WriteFile(options.input_path, "user\titem\n0\t0\n").ok());
  options.output_path = TempPath("tws_serve_bad_out.tsv");
  options.store_path = bad;
  auto stats = core::LoadAndServe(TinyConfig(), options);
  ASSERT_FALSE(stats.ok());
  // No output file for a failed serve.
  EXPECT_NE(::access(options.output_path.c_str(), F_OK), 0);
  std::remove(bad.c_str());
  std::remove(options.input_path.c_str());
}

// ---------------------------------------------------------------------------
// MicroBatcher: store + params swap together, or not at all
// ---------------------------------------------------------------------------

TEST_F(TowerStoreServingTest, BatcherServesStoreBackedBitwiseIdentical) {
  core::BatchScorer reference(trainer_);

  auto owned = std::make_unique<core::RrreTrainer>(TinyConfig());
  ASSERT_TRUE(owned->Load(*prefix_).ok());
  serve::MicroBatcher::Options options;
  options.max_delay_us = 0;
  options.store_path = *store_path_;
  serve::MicroBatcher batcher(std::move(owned), options, MapFixtureStore());
  ASSERT_TRUE(batcher.store_backed());

  for (const auto& [user, item] :
       {std::pair<int64_t, int64_t>{0, 0}, {3, 1}, {7, 5}}) {
    const auto got = ScoreSync(batcher, user, item);
    const auto want = reference.Score({{user, item}});
    EXPECT_EQ(got.rating, want.ratings[0]);
    EXPECT_EQ(got.reliability, want.reliabilities[0]);
  }
  batcher.Stop();
}

TEST_F(TowerStoreServingTest, TornStoreFailsTheReloadAndOldSnapshotServes) {
  // The batcher works on a test-local copy of the store so this test can
  // corrupt and republish freely.
  const std::string local = TempPath("tws_batcher_reload.tws");
  auto good_bytes = common::ReadFile(*store_path_);
  ASSERT_TRUE(good_bytes.ok());
  ASSERT_TRUE(common::WriteFile(local, good_bytes.value()).ok());

  auto owned = std::make_unique<core::RrreTrainer>(TinyConfig());
  ASSERT_TRUE(owned->Load(*prefix_).ok());
  serve::MicroBatcher::Options options;
  options.max_delay_us = 0;
  options.store_path = local;
  auto initial = core::MapTowerStoreForCheckpoint(local, *prefix_, *trainer_);
  ASSERT_TRUE(initial.ok());
  serve::MicroBatcher batcher(std::move(owned), options,
                              std::move(initial).ValueOrDie());

  const auto before = ScoreSync(batcher, 3, 1);

  // Tear the store on disk (atomic replace — the batcher's live mapping
  // keeps the old inode, exactly like a botched republish in production).
  ASSERT_TRUE(common::WriteFile(local, good_bytes.value().substr(
                                           0, good_bytes.value().size() / 2))
                  .ok());
  const Status torn = ReloadSync(batcher, *prefix_);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(batcher.generation(), 0) << "a torn store must not swap";

  // The old snapshot — parameters AND store — keeps serving, bit for bit.
  const auto after = ScoreSync(batcher, 3, 1);
  EXPECT_EQ(before.rating, after.rating);
  EXPECT_EQ(before.reliability, after.reliability);

  // Republish a good store: the same reload now succeeds and scores are
  // unchanged (same parameters underneath).
  ASSERT_TRUE(common::WriteFile(local, good_bytes.value()).ok());
  ASSERT_TRUE(ReloadSync(batcher, *prefix_).ok());
  EXPECT_EQ(batcher.generation(), 1);
  const auto reloaded = ScoreSync(batcher, 3, 1);
  EXPECT_EQ(before.rating, reloaded.rating);
  EXPECT_EQ(before.reliability, reloaded.reliability);

  batcher.Stop();
  std::remove(local.c_str());
}

TEST_F(TowerStoreServingTest, ReloadFailpointKeepsStoreBackedSnapshot) {
  auto owned = std::make_unique<core::RrreTrainer>(TinyConfig());
  ASSERT_TRUE(owned->Load(*prefix_).ok());
  serve::MicroBatcher::Options options;
  options.max_delay_us = 0;
  options.store_path = *store_path_;
  serve::MicroBatcher batcher(std::move(owned), options, MapFixtureStore());

  const auto before = ScoreSync(batcher, 4, 2);

  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("serve.reload", once);
  const Status failed = ReloadSync(batcher, *prefix_);
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("serve.reload"), std::string::npos);
  EXPECT_EQ(batcher.generation(), 0);

  const auto after = ScoreSync(batcher, 4, 2);
  EXPECT_EQ(before.rating, after.rating);
  EXPECT_EQ(before.reliability, after.reliability);

  // And with the fault cleared, the store-backed reload goes through.
  ASSERT_TRUE(ReloadSync(batcher, *prefix_).ok());
  EXPECT_EQ(batcher.generation(), 1);
  batcher.Stop();
}

TEST_F(TowerStoreServingTest, MmapFailpointFailsTheReloadNotTheSnapshot) {
  auto owned = std::make_unique<core::RrreTrainer>(TinyConfig());
  ASSERT_TRUE(owned->Load(*prefix_).ok());
  serve::MicroBatcher::Options options;
  options.max_delay_us = 0;
  options.store_path = *store_path_;
  serve::MicroBatcher batcher(std::move(owned), options, MapFixtureStore());

  const auto before = ScoreSync(batcher, 5, 3);

  // The reload's re-map of the store fails at the mmap seam.
  failpoint::Config once;
  once.count = 1;
  failpoint::Arm("store.mmap", once);
  const Status failed = ReloadSync(batcher, *prefix_);
  failpoint::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("store.mmap"), std::string::npos);
  EXPECT_EQ(batcher.generation(), 0);

  const auto after = ScoreSync(batcher, 5, 3);
  EXPECT_EQ(before.rating, after.rating);
  EXPECT_EQ(before.reliability, after.reliability);
  batcher.Stop();
}

}  // namespace
}  // namespace rrre
