// Tests of the tower-cached BatchScorer: exactness against the full
// pipeline and cache behavior.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "core/scorer.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace rrre::core {
namespace {

using common::Rng;

class BatchScorerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(31);
    corpus_ = new data::ReviewDataset(data::GenerateSyntheticDataset(
        data::YelpChiProfile(0.05), rng));
    RrreConfig config;
    config.word_dim = 8;
    config.rev_dim = 8;
    config.id_dim = 4;
    config.attention_dim = 6;
    config.fm_factors = 4;
    config.max_tokens = 8;
    config.s_u = 3;
    config.s_i = 4;
    config.epochs = 2;
    config.pretrain_epochs = 1;
    trainer_ = new RrreTrainer(config);
    trainer_->Fit(*corpus_);
  }

  static void TearDownTestSuite() {
    delete trainer_;
    delete corpus_;
    trainer_ = nullptr;
    corpus_ = nullptr;
  }

  static data::ReviewDataset* corpus_;
  static RrreTrainer* trainer_;
};

data::ReviewDataset* BatchScorerTest::corpus_ = nullptr;
RrreTrainer* BatchScorerTest::trainer_ = nullptr;

TEST_F(BatchScorerTest, MatchesFullPipelineExactly) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < 60; ++i) {
    const data::Review& r = corpus_->review(i % corpus_->size());
    pairs.emplace_back(r.user, r.item);
  }
  auto full = trainer_->PredictPairs(pairs);
  BatchScorer scorer(trainer_);
  auto fast = scorer.Score(pairs);
  ASSERT_EQ(full.ratings.size(), fast.ratings.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_NEAR(full.ratings[i], fast.ratings[i], 2e-4) << i;
    EXPECT_NEAR(full.reliabilities[i], fast.reliabilities[i], 2e-5) << i;
  }
}

TEST_F(BatchScorerTest, CachesAreReusedAcrossCalls) {
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}, {0, 1}, {1, 0}});
  EXPECT_EQ(scorer.cached_users(), 2);
  EXPECT_EQ(scorer.cached_items(), 2);
  scorer.Score({{0, 1}, {1, 1}});
  EXPECT_EQ(scorer.cached_users(), 2);  // No new users.
  EXPECT_EQ(scorer.cached_items(), 2);  // Item 1 already cached.
}

TEST_F(BatchScorerTest, ScoreAllItemsForUserCoversCatalog) {
  BatchScorer scorer(trainer_);
  auto preds = scorer.ScoreAllItemsForUser(2);
  EXPECT_EQ(preds.ratings.size(),
            static_cast<size_t>(corpus_->num_items()));
  EXPECT_EQ(scorer.cached_items(), corpus_->num_items());
  for (double l : preds.reliabilities) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST_F(BatchScorerTest, CachedCatalogScoringIsFasterSecondTime) {
  BatchScorer scorer(trainer_);
  common::Timer cold_timer;
  scorer.ScoreAllItemsForUser(3);
  const double cold = cold_timer.ElapsedSeconds();
  common::Timer warm_timer;
  scorer.ScoreAllItemsForUser(4);  // Item profiles all cached already.
  const double warm = warm_timer.ElapsedSeconds();
  EXPECT_LT(warm, cold);  // Heads only vs towers + heads.
}

TEST_F(BatchScorerTest, InvalidateDropsCachesAndRebinds) {
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}, {1, 1}});
  EXPECT_EQ(scorer.cached_users(), 2);
  EXPECT_EQ(scorer.cached_items(), 2);
  scorer.Invalidate();
  EXPECT_EQ(scorer.cached_users(), 0);
  EXPECT_EQ(scorer.cached_items(), 0);
  // Still scores correctly after rebinding (parameters are unchanged here,
  // so the numbers must match the full pipeline as usual).
  auto fast = scorer.Score({{0, 0}});
  auto full = trainer_->PredictPairs({{0, 0}});
  EXPECT_NEAR(fast.reliabilities[0], full.reliabilities[0], 2e-5);
}

TEST_F(BatchScorerTest, StaleCachesAreACheckedError) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}});
  // Further training bumps the trainer's params_version; the next scoring
  // call must die loudly instead of mixing old cached towers with new
  // parameters. (The mutation happens in the death-test child process, so
  // the suite's shared trainer is unaffected.)
  EXPECT_DEATH(
      {
        trainer_->Fit(*corpus_);
        scorer.Score({{0, 0}});
      },
      "stale");
}

TEST_F(BatchScorerTest, InvalidateAfterRetrainingRestoresService) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Same scenario, but the consumer reacts correctly: Invalidate() after
  // the retrain re-binds the scorer and scoring succeeds again.
  EXPECT_EXIT(
      {
        BatchScorer scorer(trainer_);
        scorer.Score({{0, 0}});
        trainer_->Fit(*corpus_);
        scorer.Invalidate();
        scorer.Score({{0, 0}});
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST_F(BatchScorerTest, ProfilesIndependentOfPairedCounterpart) {
  // The same user scored against two different items must reuse one cached
  // profile and produce a reliability that differs only through the item.
  BatchScorer scorer(trainer_);
  auto a = scorer.Score({{5, 0}});
  auto b = scorer.Score({{5, 1}});
  EXPECT_EQ(scorer.cached_users(), 1);
  // Cross-check against the trainer's full pipeline for both pairs.
  auto full = trainer_->PredictPairs({{5, 0}, {5, 1}});
  EXPECT_NEAR(a.reliabilities[0], full.reliabilities[0], 2e-5);
  EXPECT_NEAR(b.reliabilities[0], full.reliabilities[1], 2e-5);
}

}  // namespace
}  // namespace rrre::core
