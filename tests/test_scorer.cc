// Tests of the tower-cached BatchScorer: exactness against the full
// pipeline and cache behavior.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "core/scorer.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace rrre::core {
namespace {

using common::Rng;

class BatchScorerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(31);
    corpus_ = new data::ReviewDataset(data::GenerateSyntheticDataset(
        data::YelpChiProfile(0.05), rng));
    RrreConfig config;
    config.word_dim = 8;
    config.rev_dim = 8;
    config.id_dim = 4;
    config.attention_dim = 6;
    config.fm_factors = 4;
    config.max_tokens = 8;
    config.s_u = 3;
    config.s_i = 4;
    config.epochs = 2;
    config.pretrain_epochs = 1;
    trainer_ = new RrreTrainer(config);
    trainer_->Fit(*corpus_);
  }

  static void TearDownTestSuite() {
    delete trainer_;
    delete corpus_;
    trainer_ = nullptr;
    corpus_ = nullptr;
  }

  static data::ReviewDataset* corpus_;
  static RrreTrainer* trainer_;
};

data::ReviewDataset* BatchScorerTest::corpus_ = nullptr;
RrreTrainer* BatchScorerTest::trainer_ = nullptr;

TEST_F(BatchScorerTest, MatchesFullPipelineExactly) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < 60; ++i) {
    const data::Review& r = corpus_->review(i % corpus_->size());
    pairs.emplace_back(r.user, r.item);
  }
  auto full = trainer_->PredictPairs(pairs);
  BatchScorer scorer(trainer_);
  auto fast = scorer.Score(pairs);
  ASSERT_EQ(full.ratings.size(), fast.ratings.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_NEAR(full.ratings[i], fast.ratings[i], 2e-4) << i;
    EXPECT_NEAR(full.reliabilities[i], fast.reliabilities[i], 2e-5) << i;
  }
}

TEST_F(BatchScorerTest, CachesAreReusedAcrossCalls) {
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}, {0, 1}, {1, 0}});
  EXPECT_EQ(scorer.cached_users(), 2);
  EXPECT_EQ(scorer.cached_items(), 2);
  scorer.Score({{0, 1}, {1, 1}});
  EXPECT_EQ(scorer.cached_users(), 2);  // No new users.
  EXPECT_EQ(scorer.cached_items(), 2);  // Item 1 already cached.
}

TEST_F(BatchScorerTest, ScoreAllItemsForUserCoversCatalog) {
  BatchScorer scorer(trainer_);
  auto preds = scorer.ScoreAllItemsForUser(2);
  EXPECT_EQ(preds.ratings.size(),
            static_cast<size_t>(corpus_->num_items()));
  EXPECT_EQ(scorer.cached_items(), corpus_->num_items());
  for (double l : preds.reliabilities) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST_F(BatchScorerTest, CachedCatalogScoringIsFasterSecondTime) {
  BatchScorer scorer(trainer_);
  common::Timer cold_timer;
  scorer.ScoreAllItemsForUser(3);
  const double cold = cold_timer.ElapsedSeconds();
  common::Timer warm_timer;
  scorer.ScoreAllItemsForUser(4);  // Item profiles all cached already.
  const double warm = warm_timer.ElapsedSeconds();
  EXPECT_LT(warm, cold);  // Heads only vs towers + heads.
}

TEST_F(BatchScorerTest, InvalidateDropsCachesAndRebinds) {
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}, {1, 1}});
  EXPECT_EQ(scorer.cached_users(), 2);
  EXPECT_EQ(scorer.cached_items(), 2);
  scorer.Invalidate();
  EXPECT_EQ(scorer.cached_users(), 0);
  EXPECT_EQ(scorer.cached_items(), 0);
  // Still scores correctly after rebinding (parameters are unchanged here,
  // so the numbers must match the full pipeline as usual).
  auto fast = scorer.Score({{0, 0}});
  auto full = trainer_->PredictPairs({{0, 0}});
  EXPECT_NEAR(fast.reliabilities[0], full.reliabilities[0], 2e-5);
}

TEST_F(BatchScorerTest, StaleCachesAreACheckedError) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}});
  // Further training bumps the trainer's params_version; the next scoring
  // call must die loudly instead of mixing old cached towers with new
  // parameters. (The mutation happens in the death-test child process, so
  // the suite's shared trainer is unaffected.)
  EXPECT_DEATH(
      {
        trainer_->Fit(*corpus_);
        scorer.Score({{0, 0}});
      },
      "stale");
}

TEST_F(BatchScorerTest, InvalidateAfterRetrainingRestoresService) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Same scenario, but the consumer reacts correctly: Invalidate() after
  // the retrain re-binds the scorer and scoring succeeds again.
  EXPECT_EXIT(
      {
        BatchScorer scorer(trainer_);
        scorer.Score({{0, 0}});
        trainer_->Fit(*corpus_);
        scorer.Invalidate();
        scorer.Score({{0, 0}});
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST_F(BatchScorerTest, CacheStatsTrackHitsAndMisses) {
  BatchScorer scorer(trainer_);
  scorer.Score({{0, 0}, {1, 0}});
  EXPECT_EQ(scorer.user_cache_stats().misses, 2);
  EXPECT_EQ(scorer.user_cache_stats().hits, 0);
  EXPECT_EQ(scorer.item_cache_stats().misses, 1);
  EXPECT_EQ(scorer.item_cache_stats().hits, 0);
  scorer.Score({{0, 0}});
  EXPECT_EQ(scorer.user_cache_stats().hits, 1);
  EXPECT_EQ(scorer.user_cache_stats().misses, 2);
  EXPECT_EQ(scorer.item_cache_stats().hits, 1);
  EXPECT_EQ(scorer.user_cache_stats().evictions, 0);
  EXPECT_EQ(scorer.item_cache_stats().evictions, 0);
}

TEST_F(BatchScorerTest, CappedScorerMatchesUnboundedBitwise) {
  // Far more distinct users than the cache cap, revisited across several
  // calls in a shuffled order: the capped scorer must evict and recompute,
  // and every recomputed profile must reproduce the cached one exactly —
  // scores bit-identical to the unbounded scorer's.
  const int64_t num_users = corpus_->num_users();
  const int64_t num_items = corpus_->num_items();
  ASSERT_GT(num_users, trainer_->config().batch_size);
  Rng rng(77);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < 300; ++i) {
    pairs.emplace_back(
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_users))),
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_items))));
  }
  BatchScorer unbounded(trainer_);
  BatchScorer::Options options;
  options.tower_cache_cap = 1;  // Clamped up to config batch_size.
  BatchScorer capped(trainer_, options);
  for (size_t start = 0; start < pairs.size(); start += 50) {
    const std::vector<std::pair<int64_t, int64_t>> slice(
        pairs.begin() + start, pairs.begin() + start + 50);
    const auto full = unbounded.Score(slice);
    const auto small = capped.Score(slice);
    for (size_t i = 0; i < slice.size(); ++i) {
      EXPECT_EQ(full.ratings[i], small.ratings[i]) << start + i;
      EXPECT_EQ(full.reliabilities[i], small.reliabilities[i]) << start + i;
    }
  }
  // The cap held and was actually exercised.
  EXPECT_LE(capped.cached_users(), trainer_->config().batch_size);
  EXPECT_GT(capped.user_cache_stats().evictions, 0);
  EXPECT_EQ(unbounded.user_cache_stats().evictions, 0);
  // Evicted-and-revisited users miss again in the capped scorer, so its
  // miss count strictly exceeds the unbounded scorer's (= distinct users).
  EXPECT_GT(capped.user_cache_stats().misses,
            unbounded.user_cache_stats().misses);
}

TEST_F(BatchScorerTest, EvictedProfilesAreRecomputedNotCorrupted) {
  // Directly exercise Prime + eviction: fill past the cap, come back to the
  // evicted ids, and check the recomputed scores against the full pipeline.
  BatchScorer::Options options;
  options.tower_cache_cap = 1;  // Effective cap = batch_size.
  BatchScorer scorer(trainer_, options);
  const int64_t cap = trainer_->config().batch_size;
  std::vector<int64_t> users;
  for (int64_t u = 0; u < cap + 8 && u < corpus_->num_users(); ++u) {
    users.push_back(u);
  }
  scorer.PrimeUsers(users);
  EXPECT_LE(scorer.cached_users(), cap);
  EXPECT_GT(scorer.user_cache_stats().evictions, 0);
  // User 0 was evicted (LRU); scoring it again recomputes the profile.
  auto fast = scorer.Score({{0, 0}});
  auto full = trainer_->PredictPairs({{0, 0}});
  EXPECT_NEAR(fast.reliabilities[0], full.reliabilities[0], 2e-5);
}

TEST_F(BatchScorerTest, ProfilesIndependentOfPairedCounterpart) {
  // The same user scored against two different items must reuse one cached
  // profile and produce a reliability that differs only through the item.
  BatchScorer scorer(trainer_);
  auto a = scorer.Score({{5, 0}});
  auto b = scorer.Score({{5, 1}});
  EXPECT_EQ(scorer.cached_users(), 1);
  // Cross-check against the trainer's full pipeline for both pairs.
  auto full = trainer_->PredictPairs({{5, 0}, {5, 1}});
  EXPECT_NEAR(a.reliabilities[0], full.reliabilities[0], 2e-5);
  EXPECT_NEAR(b.reliabilities[0], full.reliabilities[1], 2e-5);
}

}  // namespace
}  // namespace rrre::core
