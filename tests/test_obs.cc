// Tests of the src/obs observability subsystem: the sharded metrics
// registry and its deterministic exposition, RAII trace spans, the JSONL
// telemetry records/parser, and the trainer's per-epoch telemetry stream
// (including its bitwise thread-count independence).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "common/threadpool.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace rrre {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterSumsAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  counter->Increment(42);
  EXPECT_EQ(counter->Value(), kThreads * kPerThread + 42);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("test_depth");
  EXPECT_EQ(gauge->Value(), 0);
  gauge->Set(7);
  EXPECT_EQ(gauge->Value(), 7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);
}

TEST(MetricsRegistryTest, HistogramRecordsAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::HistogramMetric* histogram = registry.GetHistogram("test_latency_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const common::Histogram merged = histogram->Snapshot();
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(merged.Min(), 0.0);
  EXPECT_DOUBLE_EQ(merged.Max(), kThreads * kPerThread - 1);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a_total", "first"),
            registry.GetCounter("a_total", "second help ignored"));
  EXPECT_EQ(registry.GetGauge("a_gauge"), registry.GetGauge("a_gauge"));
  EXPECT_EQ(registry.GetHistogram("a_hist"), registry.GetHistogram("a_hist"));
}

TEST(MetricsRegistryTest, RenderTextSortedAndTyped) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zzz_total", "last by name")->Increment(3);
  registry.GetGauge("mmm_depth", "middle")->Set(-5);
  registry.GetHistogram("aaa_us", "first")->Record(10.0);
  const std::string text = registry.RenderText();
  // Sorted by metric name: the histogram renders first, the counter last.
  EXPECT_LT(text.find("aaa_us"), text.find("mmm_depth"));
  EXPECT_LT(text.find("mmm_depth"), text.find("zzz_total"));
  EXPECT_NE(text.find("# HELP zzz_total last by name"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zzz_total counter"), std::string::npos);
  EXPECT_NE(text.find("zzz_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mmm_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("mmm_depth -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aaa_us summary"), std::string::npos);
  EXPECT_NE(text.find("aaa_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
}

TEST(MetricsRegistryTest, ScrapeIsDeterministic) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("events_total");
  obs::HistogramMetric* histogram = registry.GetHistogram("lat_us");
  // Concurrent writers: the merge order of the shards must not depend on
  // which threads recorded what.
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        counter->Increment();
        histogram->Record(1.0 + t * 13 + i % 37);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string first = registry.RenderText();
  const std::string second = registry.RenderText();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("events_total 1200"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

/// Restores the global profiling flag so other tests (and other binaries in
/// the same ctest run) see the environment-derived default.
class TraceSpanTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = obs::ProfilingEnabled(); }
  void TearDown() override { obs::SetProfilingEnabled(original_); }

  bool original_ = false;
};

TEST_F(TraceSpanTest, DisabledSpansRecordNothing) {
  obs::SetProfilingEnabled(false);
  obs::MetricsRegistry registry;
  {
    obs::TraceSpan span("idle", &registry);
    EXPECT_EQ(obs::TraceSpan::Depth(), 0);
  }
  EXPECT_EQ(registry.RenderText(), "");
}

TEST_F(TraceSpanTest, NestedSpansRecordTotalsAndSelfTime) {
  obs::SetProfilingEnabled(true);
  obs::MetricsRegistry registry;
  {
    obs::TraceSpan outer("outer", &registry);
    EXPECT_EQ(obs::TraceSpan::Depth(), 1);
    {
      obs::TraceSpan inner("inner", &registry);
      EXPECT_EQ(obs::TraceSpan::Depth(), 2);
    }
    EXPECT_EQ(obs::TraceSpan::Depth(), 1);
  }
  EXPECT_EQ(obs::TraceSpan::Depth(), 0);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("span_outer_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("span_inner_us_count 1"), std::string::npos);
  // Only the outer span had children, so only it records a self-time series.
  EXPECT_NE(text.find("span_outer_self_us_count 1"), std::string::npos);
  EXPECT_EQ(text.find("span_inner_self_us"), std::string::npos);
}

TEST_F(TraceSpanTest, SpansOnSeparateThreadsAreIndependent) {
  obs::SetProfilingEnabled(true);
  obs::MetricsRegistry registry;
  obs::TraceSpan outer("main_thread", &registry);
  std::thread other([&registry] {
    // This thread's stack starts empty even though the main thread has an
    // open span.
    EXPECT_EQ(obs::TraceSpan::Depth(), 0);
    obs::TraceSpan span("worker_thread", &registry);
    EXPECT_EQ(obs::TraceSpan::Depth(), 1);
  });
  other.join();
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("span_worker_thread_us_count 1"), std::string::npos);
  // The worker span is not a child of the main thread's open span, so the
  // main span has no self-time series yet.
  EXPECT_EQ(text.find("span_main_thread_self_us"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JsonRecord and the JSONL parser
// ---------------------------------------------------------------------------

TEST(JsonRecordTest, SerializesInInsertionOrder) {
  obs::JsonRecord record;
  record.AddInt("epoch", 3);
  record.AddDouble("loss", 0.5);
  record.AddString("phase", "train");
  EXPECT_EQ(record.ToJsonLine(),
            "{\"epoch\":3,\"loss\":0.5,\"phase\":\"train\"}\n");
}

TEST(JsonRecordTest, RoundTripsThroughParser) {
  obs::JsonRecord record;
  record.AddInt("i", -1234567890123LL);
  record.AddDouble("pi", 3.141592653589793);
  record.AddDouble("tenth", 0.1);
  record.AddDouble("huge", 1e300);
  record.AddDouble("tiny", -2.2250738585072014e-308);
  record.AddString("s", "line\nbreak\tand \"quotes\" and back\\slash");
  record.AddString("empty", "");
  const std::string line = record.ToJsonLine();
  auto parsed = obs::ParseJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToJsonLine(), line);
  ASSERT_NE(parsed.value().Find("s"), nullptr);
  EXPECT_EQ(*parsed.value().Find("s"),
            "line\nbreak\tand \"quotes\" and back\\slash");
  ASSERT_NE(parsed.value().Find("pi"), nullptr);
  EXPECT_EQ(std::stod(*parsed.value().Find("pi")), 3.141592653589793);
  EXPECT_EQ(parsed.value().Find("missing"), nullptr);
}

TEST(JsonRecordTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(obs::ParseJsonLine("").ok());
  EXPECT_FALSE(obs::ParseJsonLine("not json").ok());
  EXPECT_FALSE(obs::ParseJsonLine("{\"a\":1} trailing").ok());
  EXPECT_FALSE(obs::ParseJsonLine("{\"a\":}").ok());
  EXPECT_FALSE(obs::ParseJsonLine("{\"a\"").ok());
  EXPECT_FALSE(obs::ParseJsonLine("{\"a\":\"dangling\\\"}").ok());
  EXPECT_FALSE(obs::ParseJsonLine("{\"a\":{\"nested\":1}}").ok());
}

TEST(JsonRecordTest, ParseJsonLinesSplitsRecords) {
  auto records = obs::ParseJsonLines("{\"a\":1}\n\n{\"b\":2}\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_NE(records.value()[0].Find("a"), nullptr);
  EXPECT_NE(records.value()[1].Find("b"), nullptr);
}

TEST(TelemetryWriterTest, WritesParseableJsonl) {
  const std::string path = ::testing::TempDir() + "/telemetry_writer.jsonl";
  {
    obs::TelemetryWriter::Options options;
    options.path = path;
    obs::TelemetryWriter writer(options);
    ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
    EXPECT_TRUE(writer.include_timings());
    for (int i = 0; i < 3; ++i) {
      obs::JsonRecord record;
      record.AddInt("step", i);
      record.AddDouble("value", 0.25 * i);
      ASSERT_TRUE(writer.Write(record).ok());
    }
  }
  auto content = common::ReadFile(path);
  ASSERT_TRUE(content.ok());
  auto records = obs::ParseJsonLines(content.value());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(*records.value()[2].Find("step"), "2");
}

TEST(TelemetryWriterTest, UnwritablePathReportsError) {
  obs::TelemetryWriter::Options options;
  options.path = "/nonexistent-dir/telemetry.jsonl";
  obs::TelemetryWriter writer(options);
  EXPECT_FALSE(writer.status().ok());
}

// ---------------------------------------------------------------------------
// Trainer per-epoch telemetry
// ---------------------------------------------------------------------------

data::ReviewDataset TelemetryCorpus() {
  data::ReviewDataset ds(6, 5);
  const char* texts[] = {
      "great pasta and friendly staff",  "terrible service avoid this",
      "amazing deal best place in town", "okay food nothing special",
      "worst scam ever do not go",       "lovely ambiance great wine",
      "decent prices quick service",     "fantastic best pasta in town",
  };
  int64_t ts = 0;
  for (int64_t u = 0; u < 6; ++u) {
    for (int64_t i = 0; i < 5; ++i) {
      data::Review r;
      r.user = u;
      r.item = i;
      r.rating = static_cast<float>(1 + (u * 3 + i * 2) % 5);
      r.timestamp = ++ts;
      r.text = texts[(u * 5 + i) % 8];
      r.label = ((u + i) % 4 == 0) ? data::ReliabilityLabel::kFake
                                   : data::ReliabilityLabel::kBenign;
      ds.Add(r);
    }
  }
  ds.BuildIndex();
  return ds;
}

core::RrreConfig TelemetryConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  c.shard_size = 4;
  c.lr = 5e-3;
  return c;
}

/// Trains for two epochs with telemetry attached and returns the raw JSONL.
std::string RunTelemetryFit(int threads, bool include_timings,
                            const std::string& path) {
  common::ThreadPool::SetGlobalSize(threads);
  data::ReviewDataset corpus = TelemetryCorpus();
  core::RrreTrainer trainer(TelemetryConfig());
  obs::TelemetryWriter::Options options;
  options.path = path;
  options.include_timings = include_timings;
  obs::TelemetryWriter writer(options);
  EXPECT_TRUE(writer.status().ok()) << writer.status().ToString();
  core::RrreTrainer::TelemetryOptions telemetry;
  telemetry.writer = &writer;
  telemetry.eval = &corpus;
  trainer.SetTelemetry(telemetry);
  trainer.Fit(corpus);
  // The stream lives at <path>.tmp until Close() commits it atomically.
  EXPECT_TRUE(writer.Close().ok());
  auto content = common::ReadFile(path);
  EXPECT_TRUE(content.ok());
  return content.ok() ? content.value() : std::string();
}

class TrainerTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { original_size_ = common::ThreadPool::GlobalSize(); }
  void TearDown() override {
    common::ThreadPool::SetGlobalSize(original_size_);
  }

  int original_size_ = 0;
};

TEST_F(TrainerTelemetryTest, TwoEpochRunRoundTripsThroughParser) {
  const std::string path = ::testing::TempDir() + "/trainer_telemetry.jsonl";
  const std::string content =
      RunTelemetryFit(/*threads=*/2, /*include_timings=*/true, path);
  auto records = obs::ParseJsonLines(content);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records.value().size(), 2u);
  std::string reserialized;
  for (size_t e = 0; e < records.value().size(); ++e) {
    const obs::JsonRecord& record = records.value()[e];
    for (const char* key : {"epoch", "loss", "loss1", "loss2", "grad_norm",
                            "examples", "batches", "eval_brmse", "eval_auc",
                            "seconds", "shards"}) {
      EXPECT_NE(record.Find(key), nullptr) << "epoch " << e << " lacks " << key;
    }
    EXPECT_GT(std::stod(*record.Find("grad_norm")), 0.0);
    EXPECT_EQ(*record.Find("examples"), "30");
    reserialized += record.ToJsonLine();
  }
  EXPECT_EQ(std::stoll(*records.value()[1].Find("epoch")),
            std::stoll(*records.value()[0].Find("epoch")) + 1);
  // Bitwise round-trip: parsing and re-serializing reproduces the file.
  EXPECT_EQ(reserialized, content);
}

TEST_F(TrainerTelemetryTest, TimingFreeStreamIsThreadCountInvariant) {
  const std::string path1 = ::testing::TempDir() + "/telemetry_t1.jsonl";
  const std::string path4 = ::testing::TempDir() + "/telemetry_t4.jsonl";
  const std::string serial =
      RunTelemetryFit(/*threads=*/1, /*include_timings=*/false, path1);
  const std::string parallel =
      RunTelemetryFit(/*threads=*/4, /*include_timings=*/false, path4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Timing fields are gone, the computational fields remain.
  auto records = obs::ParseJsonLines(serial);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].Find("seconds"), nullptr);
  EXPECT_EQ(records.value()[0].Find("shards"), nullptr);
  EXPECT_NE(records.value()[0].Find("eval_auc"), nullptr);
}

}  // namespace
}  // namespace rrre
