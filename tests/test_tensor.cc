#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace rrre::tensor {
namespace {

using common::Rng;

// ---------------------------------------------------------------------------
// Shape
// ---------------------------------------------------------------------------

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({1}), 1);
  EXPECT_EQ(NumElements({}), 1);
}

TEST(ShapeTest, ToString) { EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]"); }

TEST(ShapeTest, Validity) {
  EXPECT_TRUE(IsValidShape({1}));
  EXPECT_TRUE(IsValidShape({4, 5}));
  EXPECT_FALSE(IsValidShape({}));
  EXPECT_FALSE(IsValidShape({0, 3}));
  EXPECT_FALSE(IsValidShape({2, -1}));
}

// ---------------------------------------------------------------------------
// Tensor basics
// ---------------------------------------------------------------------------

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);
  Tensor f = Tensor::Full({2}, 3.5f);
  EXPECT_EQ(f.at(0), 3.5f);
  EXPECT_EQ(f.at(1), 3.5f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(-1), 3);
}

TEST(TensorTest, ThreeDimAccess) {
  Tensor t = Tensor::FromVector({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_EQ(t.at(1, 0, 1), 5.0f);
  EXPECT_EQ(t.at(1, 1, 1), 7.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, CopiesShareStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 9.0f);
}

TEST(TensorTest, DetachDoesNotShare) {
  Tensor a = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.at(0) = 5.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng r1(5);
  Rng r2(5);
  Tensor a = Tensor::Randn({4, 4}, r1);
  Tensor b = Tensor::Randn({4, 4}, r2);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(TensorTest, XavierUniformWithinBound) {
  Rng rng(5);
  Tensor w = Tensor::XavierUniform({16, 8}, rng);
  const float bound = std::sqrt(6.0f / (16 + 8));
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::abs(w.at(i)), bound);
  }
}

// ---------------------------------------------------------------------------
// Forward values
// ---------------------------------------------------------------------------

TEST(OpsForwardTest, AddSubMulDiv) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 8});
  EXPECT_EQ(Add(a, b).ToVector(), (std::vector<float>{5, 7, 11}));
  EXPECT_EQ(Sub(a, b).ToVector(), (std::vector<float>{-3, -3, -5}));
  EXPECT_EQ(Mul(a, b).ToVector(), (std::vector<float>{4, 10, 24}));
  EXPECT_EQ(Div(b, a).ToVector(), (std::vector<float>{4, 2.5, 8.0f / 3}));
}

TEST(OpsForwardTest, AddBiasBroadcasts) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  EXPECT_EQ(AddBias(a, bias).ToVector(),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsForwardTest, ScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  EXPECT_EQ(AddScalar(a, 1.0f).ToVector(), (std::vector<float>{2, -1}));
  EXPECT_EQ(MulScalar(a, -3.0f).ToVector(), (std::vector<float>{-3, 6}));
  EXPECT_EQ(Neg(a).ToVector(), (std::vector<float>{-1, 2}));
}

TEST(OpsForwardTest, UnaryValues) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(Tanh(a).at(1), std::tanh(1.0f));
  EXPECT_FLOAT_EQ(Sigmoid(a).at(0), 0.5f);
  EXPECT_FLOAT_EQ(Exp(a).at(1), std::exp(1.0f));
  Tensor b = Tensor::FromVector({2}, {-2.0f, 3.0f});
  EXPECT_EQ(Relu(b).ToVector(), (std::vector<float>{0, 3}));
  Tensor c = Tensor::FromVector({2}, {4.0f, 9.0f});
  EXPECT_EQ(Sqrt(c).ToVector(), (std::vector<float>{2, 3}));
  EXPECT_EQ(Square(b).ToVector(), (std::vector<float>{4, 9}));
  EXPECT_FLOAT_EQ(Log(c).at(0), std::log(4.0f));
}

TEST(OpsForwardTest, SigmoidStableForLargeInputs) {
  Tensor a = Tensor::FromVector({2}, {100.0f, -100.0f});
  Tensor y = Sigmoid(a);
  EXPECT_FLOAT_EQ(y.at(0), 1.0f);
  EXPECT_NEAR(y.at(1), 0.0f, 1e-30f);
}

TEST(OpsForwardTest, MatMul) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsForwardTest, Transpose) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor y = Softmax(a);
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += y.at(r, j);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  // Softmax is shift-invariant: both rows differ by a constant shift.
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(y.at(0, j), y.at(1, j), 1e-6f);
  }
}

TEST(OpsForwardTest, SoftmaxStableForLargeLogits) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor y = Softmax(a);
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 1), 1.0f, 1e-6f);
  EXPECT_GT(y.at(0, 1), y.at(0, 0));
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromVector({1, 3}, {0.5f, -1.0f, 2.0f});
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(ls.at(0, j), std::log(s.at(0, j)), 1e-5f);
  }
}

TEST(OpsForwardTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
  Tensor rs = RowSum(a);
  EXPECT_EQ(rs.shape(), (Shape{2, 1}));
  EXPECT_EQ(rs.ToVector(), (std::vector<float>{3, 7}));
}

TEST(OpsForwardTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.ToVector(), a.ToVector());
}

TEST(OpsForwardTest, ConcatColsAndRows) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor cc = ConcatCols({a, b});
  EXPECT_EQ(cc.shape(), (Shape{2, 3}));
  EXPECT_EQ(cc.ToVector(), (std::vector<float>{1, 3, 4, 2, 5, 6}));

  Tensor c = Tensor::FromVector({1, 2}, {7, 8});
  Tensor cr = ConcatRows({b, c});
  EXPECT_EQ(cr.shape(), (Shape{3, 2}));
  EXPECT_EQ(cr.ToVector(), (std::vector<float>{3, 4, 5, 6, 7, 8}));
}

TEST(OpsForwardTest, SliceRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceRows(a, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{3, 4, 5, 6}));
}

TEST(OpsForwardTest, SliceCols) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceCols(a, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{2, 3, 5, 6}));
}

TEST(OpsForwardTest, Conv1dMaxPoolSelectsBestWindow) {
  // One example (B=1), T=3, d=1, window w=2, one filter: identity-sum kernel.
  Tensor values = Tensor::FromVector({3, 1}, {1, 5, 2});
  Tensor kernel = Tensor::FromVector({2, 1}, {1, 1});
  Tensor bias = Tensor::FromVector({1}, {0});
  Tensor out = Conv1dMaxPool(values, 3, kernel, bias);
  EXPECT_EQ(out.shape(), (Shape{1, 1}));
  // Windows: 1+5=6, 5+2=7 -> max 7.
  EXPECT_FLOAT_EQ(out.at(0), 7.0f);
}

TEST(OpsForwardTest, Conv1dMaxPoolBatched) {
  // B=2, T=2, d=2, w=1, f=2: per-step linear map, max over steps.
  Tensor values = Tensor::FromVector({4, 2}, {1, 0, 0, 1, 2, 2, -1, -1});
  Tensor kernel = Tensor::FromVector({2, 2}, {1, -1, 1, 1});
  Tensor bias = Tensor::FromVector({2}, {0, 10});
  Tensor out = Conv1dMaxPool(values, 2, kernel, bias);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
  // Example 0 step scores: filter0 {1, 1}, filter1 {-1+10, 1+10}.
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 11.0f);
  // Example 1 step scores: filter0 {4, -2}, filter1 {0+10, 0+10... -2+10? }.
  EXPECT_FLOAT_EQ(out.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 10.0f);
}

TEST(OpsForwardTest, EmbeddingLookup) {
  Tensor table = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor e = EmbeddingLookup(table, {2, 0, 2});
  EXPECT_EQ(e.shape(), (Shape{3, 2}));
  EXPECT_EQ(e.ToVector(), (std::vector<float>{20, 21, 0, 1, 20, 21}));
}

TEST(OpsForwardTest, WeightedPool) {
  // B=2 groups of s=2 vectors of width k=2.
  Tensor values = Tensor::FromVector({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor weights = Tensor::FromVector({2, 2}, {0.25f, 0.75f, 1.0f, 0.0f});
  Tensor p = WeightedPool(values, weights);
  EXPECT_EQ(p.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(p.at(0, 0), 0.25f * 1 + 0.75f * 3);
  EXPECT_FLOAT_EQ(p.at(0, 1), 0.25f * 2 + 0.75f * 4);
  EXPECT_FLOAT_EQ(p.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(p.at(1, 1), 6.0f);
}

TEST(OpsForwardTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropyWithLogits(logits, {1, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(OpsForwardTest, CrossEntropyWeightsZeroOutExamples) {
  Tensor logits = Tensor::FromVector({2, 2}, {10.0f, 0.0f, 0.0f, 10.0f});
  // First example is confidently correct, second confidently wrong.
  Tensor loss_unweighted = CrossEntropyWithLogits(logits, {0, 0});
  Tensor loss_weighted = CrossEntropyWithLogits(logits, {0, 0}, {1.0f, 0.0f});
  EXPECT_GT(loss_unweighted.item(), 1.0f);
  EXPECT_NEAR(loss_weighted.item(), 0.0f, 1e-3f);
}

// ---------------------------------------------------------------------------
// Gradient checks (central finite differences)
// ---------------------------------------------------------------------------

/// Checks autograd gradients of scalar-valued `f` w.r.t. every entry of every
/// tensor in `inputs` against central finite differences.
void CheckGradients(const std::vector<Tensor>& inputs,
                    const std::function<Tensor()>& f, float eps = 1e-2f,
                    float tol = 2e-2f) {
  Tensor out = f();
  ASSERT_EQ(out.numel(), 1);
  out.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (const Tensor& in : inputs) analytic.push_back(in.grad());

  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor in = inputs[t];
    for (int64_t i = 0; i < in.numel(); ++i) {
      const float orig = in.at(i);
      in.at(i) = orig + eps;
      const float up = f().item();
      in.at(i) = orig - eps;
      const float down = f().item();
      in.at(i) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[t][static_cast<size_t>(i)];
      const float scale = std::max({std::abs(a), std::abs(numeric), 1.0f});
      EXPECT_NEAR(a, numeric, tol * scale)
          << "input " << t << " entry " << i;
    }
  }
}

TEST(GradCheckTest, AddSubMulDiv) {
  Rng rng(1);
  Tensor a = Tensor::Randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({2, 3}, rng, 1.0f, true);
  // Keep divisors away from zero.
  for (int64_t i = 0; i < b.numel(); ++i) {
    b.at(i) = (b.at(i) >= 0 ? 1.0f : -1.0f) * (std::abs(b.at(i)) + 1.0f);
  }
  CheckGradients({a, b}, [&]() {
    return Sum(Mul(Add(a, b), Sub(a, b)));
  });
  CheckGradients({a, b}, [&]() { return Sum(Div(a, b)); });
}

TEST(GradCheckTest, AddBias) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 4}, rng, 1.0f, true);
  Tensor bias = Tensor::Randn({4}, rng, 1.0f, true);
  CheckGradients({a, bias}, [&]() { return Sum(Square(AddBias(a, bias))); });
}

TEST(GradCheckTest, UnaryChain) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3}, rng, 0.5f, true);
  CheckGradients({a}, [&]() { return Sum(Tanh(a)); });
  CheckGradients({a}, [&]() { return Sum(Sigmoid(a)); });
  CheckGradients({a}, [&]() { return Sum(Exp(a)); });
  CheckGradients({a}, [&]() { return Sum(Square(a)); });
}

TEST(GradCheckTest, LogAndSqrtOnPositiveInputs) {
  Rng rng(4);
  Tensor a = Tensor::Zeros({2, 3}, true);
  for (int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = 1.0f + static_cast<float>(rng.Uniform());
  }
  CheckGradients({a}, [&]() { return Sum(Log(a)); });
  CheckGradients({a}, [&]() { return Sum(Sqrt(a)); });
}

TEST(GradCheckTest, MatMul) {
  Rng rng(5);
  Tensor a = Tensor::Randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({4, 2}, rng, 1.0f, true);
  CheckGradients({a, b}, [&]() { return Sum(Square(MatMul(a, b))); });
}

TEST(GradCheckTest, TransposeThroughMatMul) {
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({3, 2}, rng, 1.0f, true);
  CheckGradients({a, b}, [&]() { return Sum(MatMul(Transpose(a), b)); });
}

TEST(GradCheckTest, Softmax) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 4}, rng, 1.0f, true);
  Tensor mix = Tensor::Randn({2, 4}, rng, 1.0f, false);
  CheckGradients({a}, [&]() { return Sum(Mul(Softmax(a), mix)); });
}

TEST(GradCheckTest, LogSoftmax) {
  Rng rng(8);
  Tensor a = Tensor::Randn({2, 4}, rng, 1.0f, true);
  Tensor mix = Tensor::Randn({2, 4}, rng, 1.0f, false);
  CheckGradients({a}, [&]() { return Sum(Mul(LogSoftmax(a), mix)); });
}

TEST(GradCheckTest, MeanAndRowSum) {
  Rng rng(9);
  Tensor a = Tensor::Randn({3, 4}, rng, 1.0f, true);
  CheckGradients({a}, [&]() { return Mean(Square(a)); });
  CheckGradients({a}, [&]() { return Sum(Square(RowSum(a))); });
}

TEST(GradCheckTest, ReshapeConcatSlice) {
  Rng rng(10);
  Tensor a = Tensor::Randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({2, 2}, rng, 1.0f, true);
  CheckGradients({a, b}, [&]() {
    Tensor cat = ConcatCols({a, b});         // [2,5]
    Tensor r = Reshape(cat, {5, 2});         // [5,2]
    Tensor s = SliceRows(r, 1, 3);           // [3,2]
    return Sum(Square(s));
  });
  CheckGradients({a, b}, [&]() {
    Tensor cat = ConcatRows({Transpose(a), Transpose(b)});  // [5? no: [3,2]+[2,2]] -> [5,2]
    return Sum(Square(cat));
  });
}

TEST(GradCheckTest, EmbeddingLookupScattersIntoTable) {
  Rng rng(11);
  Tensor table = Tensor::Randn({4, 3}, rng, 1.0f, true);
  CheckGradients({table}, [&]() {
    // Repeated id 2 must accumulate gradient twice.
    return Sum(Square(EmbeddingLookup(table, {2, 0, 2})));
  });
}

TEST(GradCheckTest, WeightedPool) {
  Rng rng(12);
  Tensor values = Tensor::Randn({6, 3}, rng, 1.0f, true);   // B=2, s=3, k=3
  Tensor weights = Tensor::Randn({2, 3}, rng, 1.0f, true);
  CheckGradients({values, weights},
                 [&]() { return Sum(Square(WeightedPool(values, weights))); });
}

TEST(GradCheckTest, SliceCols) {
  Rng rng(25);
  Tensor a = Tensor::Randn({3, 5}, rng, 1.0f, true);
  CheckGradients({a}, [&]() { return Sum(Square(SliceCols(a, 1, 3))); });
}

TEST(GradCheckTest, Conv1dMaxPool) {
  Rng rng(26);
  const int64_t b = 2, t = 5, d = 3, w = 2, f = 4;
  Tensor values = Tensor::Randn({b * t, d}, rng, 1.0f, true);
  Tensor kernel = Tensor::Randn({w * d, f}, rng, 1.0f, true);
  Tensor bias = Tensor::Randn({f}, rng, 1.0f, true);
  // Small eps so perturbations do not flip the argmax window.
  CheckGradients(
      {values, kernel, bias},
      [&]() { return Sum(Square(Conv1dMaxPool(values, t, kernel, bias))); },
      /*eps=*/5e-3f, /*tol=*/5e-2f);
}

TEST(GradCheckTest, CrossEntropyWithLogits) {
  Rng rng(13);
  Tensor logits = Tensor::Randn({3, 4}, rng, 1.0f, true);
  std::vector<int64_t> labels = {0, 2, 3};
  CheckGradients({logits},
                 [&]() { return CrossEntropyWithLogits(logits, labels); });
}

TEST(GradCheckTest, WeightedCrossEntropy) {
  Rng rng(14);
  Tensor logits = Tensor::Randn({3, 4}, rng, 1.0f, true);
  std::vector<int64_t> labels = {1, 1, 0};
  std::vector<float> w = {0.5f, 0.0f, 2.0f};
  CheckGradients({logits},
                 [&]() { return CrossEntropyWithLogits(logits, labels, w); });
}

TEST(GradCheckTest, SharedSubexpressionAccumulates) {
  Rng rng(15);
  Tensor a = Tensor::Randn({2, 2}, rng, 1.0f, true);
  // a used twice: gradient must be the sum of both paths.
  CheckGradients({a}, [&]() { return Sum(Mul(a, a)); });
  CheckGradients({a}, [&]() { return Sum(Add(Square(a), MulScalar(a, 3.0f))); });
}

TEST(GradCheckTest, AttentionShapedComposite) {
  // End-to-end check of the fraud-attention computation pattern:
  // scores = tanh(X W) h, softmaxed per group, then weighted pooling.
  Rng rng(16);
  const int64_t b = 2, s = 3, k = 4, att = 5;
  Tensor x = Tensor::Randn({b * s, k}, rng, 0.7f, true);
  Tensor w = Tensor::Randn({k, att}, rng, 0.7f, true);
  Tensor h = Tensor::Randn({att, 1}, rng, 0.7f, true);
  CheckGradients({x, w, h}, [&]() {
    Tensor scores = MatMul(Tanh(MatMul(x, w)), h);   // [b*s, 1]
    Tensor alphas = Softmax(Reshape(scores, {b, s}));  // [b, s]
    Tensor pooled = WeightedPool(x, alphas);           // [b, k]
    return Sum(Square(pooled));
  });
}

// ---------------------------------------------------------------------------
// Backward bookkeeping
// ---------------------------------------------------------------------------

TEST(BackwardTest, GradsAreFreshPerBackward) {
  Tensor a = Tensor::FromVector({2}, {1, 2}, true);
  Tensor loss1 = Sum(Square(a));
  loss1.Backward();
  const auto g1 = a.grad();
  Tensor loss2 = Sum(Square(a));
  loss2.Backward();
  EXPECT_EQ(a.grad(), g1);  // Re-zeroed, not accumulated across calls.
}

TEST(BackwardTest, NoGradLeafIsUntouched) {
  Tensor a = Tensor::FromVector({2}, {1, 2}, true);
  Tensor c = Tensor::FromVector({2}, {5, 5}, false);
  Tensor loss = Sum(Mul(a, c));
  loss.Backward();
  EXPECT_EQ(a.grad(), (std::vector<float>{5, 5}));
  EXPECT_FALSE(c.requires_grad());
}

TEST(BackwardTest, GraphSurvivesScopedTemporaries) {
  Tensor a = Tensor::FromVector({2}, {3, 4}, true);
  Tensor loss;
  {
    Tensor tmp = Square(a);
    loss = Sum(tmp);
  }
  loss.Backward();  // tmp node must still be alive through parents chain.
  EXPECT_EQ(a.grad(), (std::vector<float>{6, 8}));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(21);
  std::map<std::string, Tensor> tensors;
  tensors["w1"] = Tensor::Randn({3, 4}, rng);
  tensors["b"] = Tensor::Randn({4}, rng);
  tensors["emb"] = Tensor::Randn({5, 2, 2}, rng);
  const std::string path = ::testing::TempDir() + "/rrre_ckpt.bin";
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  for (const auto& [name, t] : tensors) {
    ASSERT_TRUE(loaded.value().count(name)) << name;
    const Tensor& l = loaded.value().at(name);
    EXPECT_EQ(l.shape(), t.shape());
    EXPECT_EQ(l.ToVector(), t.ToVector());
    EXPECT_FALSE(l.requires_grad());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCorruptFile) {
  const std::string path = ::testing::TempDir() + "/rrre_bad_ckpt.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  EXPECT_FALSE(LoadTensors(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(LoadTensors("/definitely/not/here.bin").ok());
}

// ---------------------------------------------------------------------------
// Checkpoint format v2: corruption corpus
// ---------------------------------------------------------------------------
//
// Every corrupted variant of a valid checkpoint must come back as a clean
// Status error naming the problem — never a crash, hang, or silent
// misload. The helpers below mutate the serialized bytes directly.

std::string SlurpBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void SpitBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Saves one known tensor and returns the checkpoint's raw bytes.
std::string ValidCheckpointBytes(const std::string& path) {
  Rng rng(7);
  std::map<std::string, Tensor> tensors;
  tensors["weights"] = Tensor::Randn({4, 5}, rng);
  EXPECT_TRUE(SaveTensors(path, tensors).ok());
  return SlurpBytes(path);
}

/// Appends little-endian POD bytes to a buffer (test-side writer for
/// hand-crafting v1 entries).
template <typename T>
void AppendPod(std::string* buf, T value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Hand-writes a v1-format checkpoint (no CRC field) containing `copies`
/// entries all named `name`, each a {2} tensor.
std::string V1Bytes(const std::string& name, uint32_t copies) {
  std::string buf("RRRETNS1", 8);
  AppendPod<uint32_t>(&buf, copies);
  for (uint32_t i = 0; i < copies; ++i) {
    AppendPod<uint32_t>(&buf, static_cast<uint32_t>(name.size()));
    buf += name;
    AppendPod<uint32_t>(&buf, 1);           // rank
    AppendPod<int64_t>(&buf, 2);            // dims
    AppendPod<float>(&buf, 1.5f + i);       // payload
    AppendPod<float>(&buf, -2.5f);
  }
  return buf;
}

TEST(SerializeTest, Crc32MatchesIeeeCheckValue) {
  // The standard check value for CRC-32/ISO-HDLC ("123456789").
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(SerializeTest, SaveIsAtomicNoTempFileRemains) {
  const std::string path = ::testing::TempDir() + "/rrre_atomic.bin";
  ValidCheckpointBytes(path);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // Renamed into place, not left behind.
  std::remove(path.c_str());
}

TEST(SerializeTest, BitFlipInPayloadFailsChecksum) {
  const std::string path = ::testing::TempDir() + "/rrre_flip.bin";
  std::string bytes = ValidCheckpointBytes(path);
  bytes[bytes.size() - 3] ^= 0x40;  // Flip one bit deep in the payload.
  SpitBytes(path, bytes);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncationAtEveryPrefixFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/rrre_trunc.bin";
  const std::string bytes = ValidCheckpointBytes(path);
  // Every proper prefix must be rejected (sampled densely; the file is
  // small enough to try them all).
  for (size_t len = 0; len < bytes.size(); ++len) {
    SpitBytes(path, bytes.substr(0, len));
    EXPECT_FALSE(LoadTensors(path).ok()) << "prefix length " << len;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicFails) {
  const std::string path = ::testing::TempDir() + "/rrre_magic.bin";
  std::string bytes = ValidCheckpointBytes(path);
  bytes[0] = 'X';
  SpitBytes(path, bytes);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad checkpoint magic"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, TrailingGarbageFails) {
  const std::string path = ::testing::TempDir() + "/rrre_trailing.bin";
  std::string bytes = ValidCheckpointBytes(path);
  bytes += "extra";
  SpitBytes(path, bytes);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing garbage"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, ImplausibleEntryCountFails) {
  const std::string path = ::testing::TempDir() + "/rrre_count.bin";
  std::string bytes = ValidCheckpointBytes(path);
  const uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  SpitBytes(path, bytes);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("implausible entry count"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, OversizedDimsRejectedBeforeAllocation) {
  // rank=2, dims {2^40, 2^40}: numel would overflow int64 and the payload
  // bound; the loader must reject on the dims, not attempt the allocation.
  const std::string path = ::testing::TempDir() + "/rrre_dims.bin";
  std::string buf("RRRETNS1", 8);
  AppendPod<uint32_t>(&buf, 1);
  AppendPod<uint32_t>(&buf, 1);  // name_len
  buf += "w";
  AppendPod<uint32_t>(&buf, 2);  // rank
  AppendPod<int64_t>(&buf, int64_t{1} << 40);
  AppendPod<int64_t>(&buf, int64_t{1} << 40);
  SpitBytes(path, buf);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("element bound"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, NegativeDimFails) {
  const std::string path = ::testing::TempDir() + "/rrre_negdim.bin";
  std::string buf("RRRETNS1", 8);
  AppendPod<uint32_t>(&buf, 1);
  AppendPod<uint32_t>(&buf, 1);
  buf += "w";
  AppendPod<uint32_t>(&buf, 1);
  AppendPod<int64_t>(&buf, -4);
  SpitBytes(path, buf);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad tensor dim"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, DuplicateTensorNameFails) {
  const std::string path = ::testing::TempDir() + "/rrre_dup.bin";
  SpitBytes(path, V1Bytes("w", 2));
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate tensor name"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, ReadsLegacyV1Checkpoints) {
  const std::string path = ::testing::TempDir() + "/rrre_v1.bin";
  SpitBytes(path, V1Bytes("w", 1));
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 1u);
  const Tensor& t = loaded.value().at("w");
  EXPECT_EQ(t.shape(), (Shape{2}));
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1.5f, -2.5f}));
  std::remove(path.c_str());
}

TEST(SerializeTest, NewCheckpointsCarryV2Magic) {
  const std::string path = ::testing::TempDir() + "/rrre_v2magic.bin";
  const std::string bytes = ValidCheckpointBytes(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "RRRETNS2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rrre::tensor
