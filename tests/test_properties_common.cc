// Property tests of common::Histogram — the merge algebra the sharded
// metrics and the data-parallel trainer rely on (merge order must not change
// what a scrape reports) and the percentile invariants every consumer
// assumes.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace rrre {
namespace {

using common::Histogram;
using common::Rng;

/// Random positive sample stream spanning several octaves, so merges
/// exercise many buckets.
std::vector<double> RandomStream(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double magnitude = std::pow(10.0, rng.Uniform() * 6.0);  // [1, 1e6)
    values.push_back(magnitude * (0.5 + rng.Uniform()));
  }
  return values;
}

Histogram Fill(const std::vector<double>& values) {
  Histogram h;
  for (double v : values) h.Record(v);
  return h;
}

/// The bucket-exact part of a histogram's state: everything but the
/// floating-point running sum must match bitwise under reordered merges.
void ExpectExactStateEq(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.Min(), b.Min());
  EXPECT_EQ(a.Max(), b.Max());
  for (double pct : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(a.Percentile(pct), b.Percentile(pct)) << "pct=" << pct;
  }
}

TEST(HistogramPropertyTest, MergeIsCommutative) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sa = RandomStream(seed, 500);
    const auto sb = RandomStream(seed + 100, 300);
    Histogram ab = Fill(sa);
    ab.Merge(Fill(sb));
    Histogram ba = Fill(sb);
    ba.Merge(Fill(sa));
    ExpectExactStateEq(ab, ba);
    // Double addition is commutative (unlike associative), so two-way merge
    // sums are exactly equal too.
    EXPECT_EQ(ab.sum(), ba.sum()) << "seed=" << seed;
  }
}

TEST(HistogramPropertyTest, MergeIsAssociative) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sa = RandomStream(seed, 400);
    const auto sb = RandomStream(seed + 100, 250);
    const auto sc = RandomStream(seed + 200, 350);
    // (A + B) + C
    Histogram left = Fill(sa);
    left.Merge(Fill(sb));
    left.Merge(Fill(sc));
    // A + (B + C)
    Histogram bc = Fill(sb);
    bc.Merge(Fill(sc));
    Histogram right = Fill(sa);
    right.Merge(bc);
    // Bucket counts are integers: the distribution is exactly associative.
    ExpectExactStateEq(left, right);
    // The running sum is floating point, so associativity only holds to
    // rounding — which is why scrape determinism requires a *fixed* shard
    // merge order rather than relying on FP algebra.
    EXPECT_NEAR(left.sum(), right.sum(), 1e-6 * std::abs(left.sum()));
    EXPECT_NEAR(left.Mean(), right.Mean(), 1e-6 * std::abs(left.Mean()));
  }
}

TEST(HistogramPropertyTest, MergeMatchesSingleHistogramOfUnion) {
  const auto sa = RandomStream(7, 600);
  const auto sb = RandomStream(11, 400);
  Histogram merged = Fill(sa);
  merged.Merge(Fill(sb));
  std::vector<double> all = sa;
  all.insert(all.end(), sb.begin(), sb.end());
  const Histogram direct = Fill(all);
  ExpectExactStateEq(merged, direct);
}

TEST(HistogramPropertyTest, PercentilesAreMonotoneAndBracketed) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Histogram h = Fill(RandomStream(seed, 777));
    const double p50 = h.Percentile(50.0);
    const double p95 = h.Percentile(95.0);
    const double p99 = h.Percentile(99.0);
    EXPECT_LE(p50, p95) << "seed=" << seed;
    EXPECT_LE(p95, p99) << "seed=" << seed;
    EXPECT_GE(p50, h.Min()) << "seed=" << seed;
    EXPECT_LE(p99, h.Max()) << "seed=" << seed;
    EXPECT_EQ(h.Percentile(100.0), h.Max()) << "seed=" << seed;
    EXPECT_GE(h.Percentile(0.0), h.Min()) << "seed=" << seed;
  }
}

TEST(HistogramPropertyTest, SingleValueCollapsesAllPercentiles) {
  Histogram h;
  h.Record(1234.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Min(), 1234.5);
  EXPECT_EQ(h.Max(), 1234.5);
  for (double pct : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(pct), 1234.5) << "pct=" << pct;
  }
}

TEST(HistogramPropertyTest, EmptyHistogramIsWellDefined) {
  const Histogram empty;
  EXPECT_EQ(empty.count(), 0);
  EXPECT_EQ(empty.sum(), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_EQ(empty.Min(), 0.0);
  EXPECT_EQ(empty.Max(), 0.0);
  for (double pct : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(empty.Percentile(pct), 0.0) << "pct=" << pct;
  }
  EXPECT_FALSE(empty.Summary().empty());
}

TEST(HistogramPropertyTest, MergingEmptyIsIdentity) {
  const auto stream = RandomStream(3, 321);
  Histogram h = Fill(stream);
  const Histogram before = h;
  h.Merge(Histogram());
  ExpectExactStateEq(h, before);
  EXPECT_EQ(h.sum(), before.sum());

  Histogram onto_empty;
  onto_empty.Merge(before);
  ExpectExactStateEq(onto_empty, before);
}

}  // namespace
}  // namespace rrre
