#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "nn/attention.h"
#include "nn/fm.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace rrre {
namespace {

using common::Rng;
using common::ThreadPool;
using tensor::Shape;
using tensor::Tensor;

/// Every test in this file restores the two pieces of process-global state it
/// may touch — the thread-pool size and the fusion switch — so binaries
/// sharing a ctest invocation (or a manual full-suite run) are unaffected.
class KernelTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = ThreadPool::GlobalSize();
    original_fusion_ = tensor::FusionEnabled();
  }
  void TearDown() override {
    ThreadPool::SetGlobalSize(original_threads_);
    tensor::SetFusionEnabled(original_fusion_);
  }

  int original_threads_ = 0;
  bool original_fusion_ = false;
};

// ---------------------------------------------------------------------------
// GEMM parity oracle: the blocked kernel vs a naive triple loop with double
// accumulation, over a shape grid that crosses every blocking boundary
// (1, kMr±1, kNr±1, primes, tall/skinny, wide/flat) and all four transpose
// variants.
// ---------------------------------------------------------------------------

class KernelGemmTest : public KernelTestBase {};

std::vector<float> RandomBuffer(int64_t n, Rng& rng) {
  std::vector<float> out(static_cast<size_t>(n));
  for (auto& v : out) v = static_cast<float>(rng.Normal()) * 0.5f;
  return out;
}

/// C[m,n] += opA(A)·opB(B), accumulated per element in double. The storage
/// convention matches kernels::Gemm: A is [m,k] ([k,m] when trans_a), B is
/// [k,n] ([n,k] when trans_b), all row-major with the given strides.
void NaiveGemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               const float* a, int64_t lda, const float* b, int64_t ldb,
               float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[kk * lda + i] : a[i * lda + kk];
        const float bv = trans_b ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * ldc + j] += static_cast<float>(acc);
    }
  }
}

TEST_F(KernelGemmTest, MatchesNaiveReferenceAcrossShapeGrid) {
  using tensor::kernels::kMr;
  using tensor::kernels::kNr;
  // Crosses the register-tile boundaries (kMr=4, kNr=16), the small-n
  // fallback threshold (kSmallN=5), primes, and 1.
  const std::vector<int64_t> dims = {1,        kMr - 1,  kMr,     kMr + 1,
                                     7,        13,       kNr - 1, kNr,
                                     kNr + 1,  37};
  Rng rng(7);
  for (int variant = 0; variant < 4; ++variant) {
    const bool ta = (variant & 1) != 0;
    const bool tb = (variant & 2) != 0;
    for (int64_t m : dims) {
      for (int64_t n : dims) {
        for (int64_t k : dims) {
          const int64_t lda = ta ? m : k;
          const int64_t ldb = tb ? k : n;
          const std::vector<float> a = RandomBuffer(m * k, rng);
          const std::vector<float> b = RandomBuffer(k * n, rng);
          std::vector<float> got(static_cast<size_t>(m * n), 0.0f);
          std::vector<float> want = got;
          tensor::kernels::Gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                                got.data(), n);
          NaiveGemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, want.data(),
                    n);
          for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_NEAR(got[i], want[i],
                        1e-4 + 1e-5 * std::fabs(want[i]))
                << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
                << " k=" << k << " elem " << i;
          }
        }
      }
    }
  }
}

TEST_F(KernelGemmTest, AccumulatesIntoExistingOutput) {
  Rng rng(11);
  const int64_t m = 9, n = 17, k = 21;
  const std::vector<float> a = RandomBuffer(m * k, rng);
  const std::vector<float> b = RandomBuffer(k * n, rng);
  std::vector<float> got = RandomBuffer(m * n, rng);
  std::vector<float> want = got;
  tensor::kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, got.data(), n);
  NaiveGemm(false, false, m, n, k, a.data(), k, b.data(), n, want.data(), n);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4) << "elem " << i;
  }
}

TEST_F(KernelGemmTest, RowChunksAreBitwiseIdenticalToOneCall) {
  // The batch-shape invariance contract: a row's bits may not depend on
  // which row range (or micro-batch) it was computed in. This is what lets
  // the serving layer score a pair in a micro-batch of 3 and get the exact
  // bits of the reference batch of 120. Checked for both A-storage layouts
  // because the sharded backward calls hand in column sub-blocks when
  // trans_a is set.
  Rng rng(13);
  const int64_t m = 37, n = 29, k = 23;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const int64_t lda = ta ? m : k;
      const int64_t ldb = tb ? k : n;
      const std::vector<float> a = RandomBuffer(m * k, rng);
      const std::vector<float> b = RandomBuffer(k * n, rng);
      std::vector<float> full(static_cast<size_t>(m * n), 0.0f);
      tensor::kernels::Gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                            full.data(), n);
      for (int64_t chunk : {1, 2, 3, 5, 8}) {
        std::vector<float> pieced(static_cast<size_t>(m * n), 0.0f);
        for (int64_t lo = 0; lo < m; lo += chunk) {
          const int64_t hi = std::min(m, lo + chunk);
          // Sub-block addressing mirrors ShardedGemm in ops.cc.
          const float* a_sub = ta ? a.data() + lo : a.data() + lo * lda;
          tensor::kernels::Gemm(ta, tb, hi - lo, n, k, a_sub, lda, b.data(),
                                ldb, pieced.data() + lo * n, n);
        }
        EXPECT_EQ(pieced, full)
            << "ta=" << ta << " tb=" << tb << " chunk=" << chunk;
      }
    }
  }
}

TEST_F(KernelGemmTest, RepeatCallsAreBitwiseIdentical) {
  Rng rng(17);
  const int64_t m = 33, n = 19, k = 129;  // k crosses the kKc=128 panel
  const std::vector<float> a = RandomBuffer(m * k, rng);
  const std::vector<float> b = RandomBuffer(k * n, rng);
  std::vector<float> first(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> second = first;
  tensor::kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, first.data(), n);
  tensor::kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, second.data(), n);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Conv1dMaxPool parity oracle.
// ---------------------------------------------------------------------------

class KernelConvTest : public KernelTestBase {};

TEST_F(KernelConvTest, MatchesNaiveReference) {
  Rng rng(19);
  for (int64_t f : {1, 3, 11, 16, 17}) {
    const int64_t seq = 9, w = 3, d = 7;
    const std::vector<float> values = RandomBuffer(seq * d, rng);
    const std::vector<float> kernel = RandomBuffer(w * d * f, rng);
    const std::vector<float> bias = RandomBuffer(f, rng);
    std::vector<float> out(static_cast<size_t>(f), 0.0f);
    std::vector<int64_t> argmax(static_cast<size_t>(f), -1);
    std::vector<float> scratch(static_cast<size_t>(f), 0.0f);
    tensor::kernels::Conv1dMaxPoolExample(seq, w, d, f, values.data(),
                                          kernel.data(), bias.data(),
                                          out.data(), argmax.data(),
                                          scratch.data());
    for (int64_t c = 0; c < f; ++c) {
      double best = -1e300;
      int64_t best_q = -1;
      for (int64_t q = 0; q + w <= seq; ++q) {
        double score = bias[static_cast<size_t>(c)];
        for (int64_t t = 0; t < w * d; ++t) {
          score += static_cast<double>(values[static_cast<size_t>(q * d + t)]) *
                   static_cast<double>(kernel[static_cast<size_t>(t * f + c)]);
        }
        if (score > best) {  // first position wins ties, like the kernel
          best = score;
          best_q = q;
        }
      }
      EXPECT_NEAR(out[static_cast<size_t>(c)], best, 1e-4)
          << "f=" << f << " filter " << c;
      EXPECT_EQ(argmax[static_cast<size_t>(c)], best_q)
          << "f=" << f << " filter " << c;
    }
  }
}

TEST_F(KernelConvTest, RepeatCallsAreBitwiseIdentical) {
  Rng rng(23);
  const int64_t seq = 12, w = 3, d = 8, f = 11;
  const std::vector<float> values = RandomBuffer(seq * d, rng);
  const std::vector<float> kernel = RandomBuffer(w * d * f, rng);
  const std::vector<float> bias = RandomBuffer(f, rng);
  std::vector<float> out1(static_cast<size_t>(f)), out2(static_cast<size_t>(f));
  std::vector<int64_t> am1(static_cast<size_t>(f)), am2(static_cast<size_t>(f));
  std::vector<float> scratch(static_cast<size_t>(f));
  tensor::kernels::Conv1dMaxPoolExample(seq, w, d, f, values.data(),
                                        kernel.data(), bias.data(), out1.data(),
                                        am1.data(), scratch.data());
  tensor::kernels::Conv1dMaxPoolExample(seq, w, d, f, values.data(),
                                        kernel.data(), bias.data(), out2.data(),
                                        am2.data(), scratch.data());
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(am1, am2);
}

// ---------------------------------------------------------------------------
// Gradchecks: central finite differences against the analytic backward, at
// awkward (non-blocked, prime) shapes. The loss is a fixed random weighting
// of the output so every output coordinate contributes.
// ---------------------------------------------------------------------------

class KernelGradcheckTest : public KernelTestBase {};

using ForwardFn = std::function<Tensor(const std::vector<Tensor>&)>;

double WeightedSum(const Tensor& y, const std::vector<float>& w) {
  const std::vector<float> v = y.ToVector();
  EXPECT_EQ(v.size(), w.size());
  double s = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    s += static_cast<double>(v[i]) * static_cast<double>(w[i]);
  }
  return s;
}

void GradCheck(const std::string& name, const std::vector<Shape>& shapes,
               const ForwardFn& fn, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (const Shape& s : shapes) {
    inputs.push_back(Tensor::Randn(s, rng, 0.5f, /*requires_grad=*/true));
  }
  Tensor y = fn(inputs);
  Rng wrng(seed ^ 0x9e3779b97f4a7c15ULL);
  Tensor w = Tensor::Randn(y.shape(), wrng);
  Tensor loss = tensor::Sum(tensor::Mul(y, w));
  loss.Backward();
  const std::vector<float> wv = w.ToVector();

  const float eps = 1e-2f;
  for (size_t t = 0; t < inputs.size(); ++t) {
    const std::vector<float> analytic = inputs[t].grad();
    for (int64_t i = 0; i < inputs[t].numel(); ++i) {
      auto eval = [&](float delta) {
        std::vector<Tensor> probe;
        for (size_t u = 0; u < inputs.size(); ++u) {
          std::vector<float> v = inputs[u].ToVector();
          if (u == t) v[static_cast<size_t>(i)] += delta;
          probe.push_back(Tensor::FromVector(inputs[u].shape(), std::move(v)));
        }
        return WeightedSum(fn(probe), wv);
      };
      const double numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
      const double got = analytic[static_cast<size_t>(i)];
      const double tol =
          2e-2 + 2e-2 * std::max(std::fabs(got), std::fabs(numeric));
      EXPECT_NEAR(got, numeric, tol)
          << name << ": input " << t << " coord " << i;
    }
  }
}

TEST_F(KernelGradcheckTest, MatMulAllTransposeVariants) {
  const int64_t m = 5, k = 7, n = 3;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const Shape sa = ta ? Shape{k, m} : Shape{m, k};
      const Shape sb = tb ? Shape{n, k} : Shape{k, n};
      GradCheck("matmul ta=" + std::to_string(ta) + " tb=" + std::to_string(tb),
                {sa, sb},
                [ta, tb](const std::vector<Tensor>& in) {
                  return tensor::MatMul(in[0], in[1], ta, tb);
                },
                29);
    }
  }
}

TEST_F(KernelGradcheckTest, MatMulAtBlockBoundaryShapes) {
  // kMr=4 / kNr=16 boundaries and a k crossing the kKc panel.
  for (const auto& mkn : std::vector<std::vector<int64_t>>{
           {4, 16, 16}, {5, 17, 17}, {3, 130, 15}, {1, 7, 1}}) {
    GradCheck("matmul m=" + std::to_string(mkn[0]),
              {Shape{mkn[0], mkn[1]}, Shape{mkn[1], mkn[2]}},
              [](const std::vector<Tensor>& in) {
                return tensor::MatMul(in[0], in[1]);
              },
              31);
  }
}

TEST_F(KernelGradcheckTest, Conv1dMaxPoolMatchesFrozenArgmaxReference) {
  // Finite differences are invalid for max-pool wherever a perturbation
  // flips the argmax (the function has a kink there), so the conv backward
  // is checked against the exact analytic gradient instead: with the argmax
  // frozen, out[bi,c] = bias[c] + window(argmax)·kernel[:,c] is linear and
  // its gradient is known in closed form from the forward argmax.
  const int64_t batch = 3, seq = 5, d = 4, w = 3, f = 6;
  Rng rng(37);
  Tensor values =
      Tensor::Randn({batch * seq, d}, rng, 0.5f, /*requires_grad=*/true);
  Tensor kernel = Tensor::Randn({w * d, f}, rng, 0.5f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({f}, rng, 0.5f, /*requires_grad=*/true);
  Tensor out = tensor::Conv1dMaxPool(values, seq, kernel, bias);
  Rng wrng(73);
  Tensor lw = Tensor::Randn({batch, f}, wrng);
  tensor::Sum(tensor::Mul(out, lw)).Backward();

  // Recover each filter's argmax with the standalone kernel on the same
  // data, then accumulate the frozen-argmax gradient in double.
  std::vector<double> gv(static_cast<size_t>(batch * seq * d), 0.0);
  std::vector<double> gk(static_cast<size_t>(w * d * f), 0.0);
  std::vector<double> gb(static_cast<size_t>(f), 0.0);
  std::vector<float> out_row(static_cast<size_t>(f));
  std::vector<int64_t> argmax(static_cast<size_t>(f));
  std::vector<float> scratch(static_cast<size_t>(f));
  const std::vector<float> vv = values.ToVector();
  const std::vector<float> kv = kernel.ToVector();
  const std::vector<float> bv = bias.ToVector();
  for (int64_t bi = 0; bi < batch; ++bi) {
    tensor::kernels::Conv1dMaxPoolExample(
        seq, w, d, f, vv.data() + bi * seq * d, kv.data(), bv.data(),
        out_row.data(), argmax.data(), scratch.data());
    for (int64_t c = 0; c < f; ++c) {
      const double g = lw.at(bi, c);
      const int64_t q = argmax[static_cast<size_t>(c)];
      gb[static_cast<size_t>(c)] += g;
      for (int64_t t = 0; t < w * d; ++t) {
        gv[static_cast<size_t>(bi * seq * d + q * d + t)] +=
            g * kv[static_cast<size_t>(t * f + c)];
        gk[static_cast<size_t>(t * f + c)] +=
            g * vv[static_cast<size_t>(bi * seq * d + q * d + t)];
      }
    }
  }
  const std::vector<float>& agv = values.grad();
  const std::vector<float>& agk = kernel.grad();
  const std::vector<float>& agb = bias.grad();
  for (size_t i = 0; i < gv.size(); ++i) {
    EXPECT_NEAR(agv[i], gv[i], 1e-4) << "values grad " << i;
  }
  for (size_t i = 0; i < gk.size(); ++i) {
    EXPECT_NEAR(agk[i], gk[i], 1e-4) << "kernel grad " << i;
  }
  for (size_t i = 0; i < gb.size(); ++i) {
    EXPECT_NEAR(agb[i], gb[i], 1e-4) << "bias grad " << i;
  }
}

TEST_F(KernelGradcheckTest, AddNBiasActAllActivations) {
  const int64_t b = 3, d = 5;
  for (tensor::Activation act :
       {tensor::Activation::kNone, tensor::Activation::kTanh,
        tensor::Activation::kSigmoid, tensor::Activation::kRelu}) {
    GradCheck("addn_bias_act " + std::to_string(static_cast<int>(act)),
              {Shape{b, d}, Shape{b, d}, Shape{b, d}, Shape{d}},
              [act](const std::vector<Tensor>& in) {
                return tensor::AddNBiasAct({in[0], in[1], in[2]}, in[3], act);
              },
              41);
  }
}

TEST_F(KernelGradcheckTest, LstmPointwise) {
  const int64_t b = 3, h = 4;
  GradCheck("lstm_pointwise", {Shape{b, 4 * h}, Shape{b, h}},
            [](const std::vector<Tensor>& in) {
              tensor::LstmStepOut out = tensor::LstmPointwise(in[0], in[1]);
              return tensor::ConcatCols({out.h, out.c});
            },
            43);
}

TEST_F(KernelGradcheckTest, GruPointwise) {
  const int64_t b = 3, h = 4;
  GradCheck("gru_pointwise", {Shape{b, 3 * h}, Shape{b, 3 * h}, Shape{b, h}},
            [](const std::vector<Tensor>& in) {
              return tensor::GruPointwise(in[0], in[1], in[2]);
            },
            47);
}

TEST_F(KernelGradcheckTest, FmPairwise) {
  const int64_t b = 4, f = 5;
  GradCheck("fm_pairwise", {Shape{b, f}, Shape{b, f}},
            [](const std::vector<Tensor>& in) {
              return tensor::FmPairwise(in[0], in[1]);
            },
            53);
}

// ---------------------------------------------------------------------------
// Fusion parity: every nn module that has a fused path must produce bitwise
// identical values AND parameter/input gradients with fusion on and off.
// This is the contract that lets `--tape` default on.
// ---------------------------------------------------------------------------

class KernelFusionParityTest : public KernelTestBase {};

struct ModuleRun {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

/// Runs `body` with the fusion switch forced to `fused`. The body builds its
/// module from a fresh rng (same seed both runs), returns the output tensor,
/// and appends every tensor whose grad should be compared.
ModuleRun RunModule(
    bool fused,
    const std::function<Tensor(Rng&, std::vector<Tensor>&)>& body) {
  tensor::SetFusionEnabled(fused);
  Rng rng(1234);
  std::vector<Tensor> tracked;
  Tensor out = body(rng, tracked);
  Rng wrng(4321);
  Tensor w = Tensor::Randn(out.shape(), wrng);
  Tensor loss = tensor::Sum(tensor::Mul(out, w));
  loss.Backward();
  ModuleRun run;
  run.out = out.ToVector();
  for (const Tensor& t : tracked) run.grads.push_back(t.grad());
  return run;
}

void ExpectFusedMatchesEager(
    const std::function<Tensor(Rng&, std::vector<Tensor>&)>& body) {
  const ModuleRun eager = RunModule(false, body);
  const ModuleRun fused = RunModule(true, body);
  EXPECT_EQ(fused.out, eager.out);
  ASSERT_EQ(fused.grads.size(), eager.grads.size());
  for (size_t i = 0; i < eager.grads.size(); ++i) {
    EXPECT_EQ(fused.grads[i], eager.grads[i]) << "tracked tensor " << i;
  }
}

TEST_F(KernelFusionParityTest, LinearBitwise) {
  ExpectFusedMatchesEager([](Rng& rng, std::vector<Tensor>& tracked) {
    nn::Linear layer(7, 5, rng);
    Tensor x = Tensor::Randn({6, 7}, rng, 0.5f, /*requires_grad=*/true);
    tracked.push_back(x);
    for (const Tensor& p : layer.Parameters()) tracked.push_back(p);
    return layer.Forward(x);
  });
}

TEST_F(KernelFusionParityTest, LstmCellBitwise) {
  ExpectFusedMatchesEager([](Rng& rng, std::vector<Tensor>& tracked) {
    nn::LstmCell cell(5, 4, rng);
    Tensor x = Tensor::Randn({3, 5}, rng, 0.5f, /*requires_grad=*/true);
    Tensor h = Tensor::Randn({3, 4}, rng, 0.5f, /*requires_grad=*/true);
    Tensor c = Tensor::Randn({3, 4}, rng, 0.5f, /*requires_grad=*/true);
    tracked.insert(tracked.end(), {x, h, c});
    for (const Tensor& p : cell.Parameters()) tracked.push_back(p);
    nn::LstmCell::State next = cell.Step(x, {h, c});
    return tensor::ConcatCols({next.h, next.c});
  });
}

TEST_F(KernelFusionParityTest, GruCellBitwise) {
  ExpectFusedMatchesEager([](Rng& rng, std::vector<Tensor>& tracked) {
    nn::GruCell cell(5, 4, rng);
    Tensor x = Tensor::Randn({3, 5}, rng, 0.5f, /*requires_grad=*/true);
    Tensor h = Tensor::Randn({3, 4}, rng, 0.5f, /*requires_grad=*/true);
    tracked.insert(tracked.end(), {x, h});
    for (const Tensor& p : cell.Parameters()) tracked.push_back(p);
    return cell.Step(x, h);
  });
}

TEST_F(KernelFusionParityTest, FraudAttentionBitwise) {
  ExpectFusedMatchesEager([](Rng& rng, std::vector<Tensor>& tracked) {
    nn::FraudAttention attn(6, 4, 4, 5, rng);
    const int64_t b = 4, s = 3;
    Tensor rev = Tensor::Randn({b * s, 6}, rng, 0.5f, /*requires_grad=*/true);
    Tensor uid = Tensor::Randn({b * s, 4}, rng, 0.5f, /*requires_grad=*/true);
    Tensor iid = Tensor::Randn({b * s, 4}, rng, 0.5f, /*requires_grad=*/true);
    tracked.insert(tracked.end(), {rev, uid, iid});
    for (const Tensor& p : attn.Parameters()) tracked.push_back(p);
    return attn.Forward(rev, uid, iid, s);
  });
}

TEST_F(KernelFusionParityTest, FactorizationMachineBitwise) {
  ExpectFusedMatchesEager([](Rng& rng, std::vector<Tensor>& tracked) {
    nn::FactorizationMachine fm(9, 4, rng);
    Tensor x = Tensor::Randn({6, 9}, rng, 0.5f, /*requires_grad=*/true);
    tracked.push_back(x);
    for (const Tensor& p : fm.Parameters()) tracked.push_back(p);
    return fm.Forward(x);
  });
}

TEST_F(KernelFusionParityTest, AddNBiasActMatchesEagerChainBitwise) {
  // Op-level: the fused kernel must reproduce the exact left-to-right Add
  // nesting + AddBias + activation bits of the eager chain it replaces.
  Rng rng(99);
  Tensor a = Tensor::Randn({5, 7}, rng, 0.5f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({5, 7}, rng, 0.5f, /*requires_grad=*/true);
  Tensor c = Tensor::Randn({5, 7}, rng, 0.5f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({7}, rng, 0.5f, /*requires_grad=*/true);
  Tensor eager = tensor::Tanh(
      tensor::AddBias(tensor::Add(tensor::Add(a, b), c), bias));
  Tensor fused =
      tensor::AddNBiasAct({a, b, c}, bias, tensor::Activation::kTanh);
  EXPECT_EQ(fused.ToVector(), eager.ToVector());

  Rng wrng(66);
  Tensor w = Tensor::Randn({5, 7}, wrng);
  tensor::Sum(tensor::Mul(eager, w)).Backward();
  const std::vector<float> ga = a.grad(), gb = b.grad(), gc = c.grad(),
                           gbias = bias.grad();
  tensor::Sum(tensor::Mul(fused, w)).Backward();
  EXPECT_EQ(a.grad(), ga);
  EXPECT_EQ(b.grad(), gb);
  EXPECT_EQ(c.grad(), gc);
  EXPECT_EQ(bias.grad(), gbias);
}

TEST_F(KernelFusionParityTest, FmPairwiseMatchesEagerChainBitwise) {
  Rng rng(101);
  Tensor xv = Tensor::Randn({4, 6}, rng, 0.5f, /*requires_grad=*/true);
  Tensor x2v2 = Tensor::Randn({4, 6}, rng, 0.5f, /*requires_grad=*/true);
  Tensor eager = tensor::MulScalar(
      tensor::RowSum(tensor::Sub(tensor::Square(xv), x2v2)), 0.5f);
  Tensor fused = tensor::FmPairwise(xv, x2v2);
  EXPECT_EQ(fused.ToVector(), eager.ToVector());

  Rng wrng(67);
  Tensor w = Tensor::Randn({4, 1}, wrng);
  tensor::Sum(tensor::Mul(eager, w)).Backward();
  const std::vector<float> gx = xv.grad(), g2 = x2v2.grad();
  tensor::Sum(tensor::Mul(fused, w)).Backward();
  EXPECT_EQ(xv.grad(), gx);
  EXPECT_EQ(x2v2.grad(), g2);
}

// ---------------------------------------------------------------------------
// Reduction accumulation order: blocked reductions keep the fixed
// shard-order merge, so two scrapes of the same graph are bitwise equal at
// any thread count (the DESIGN.md accumulation-order contract).
// ---------------------------------------------------------------------------

class KernelReductionTest : public KernelTestBase {};

TEST_F(KernelReductionTest, DoubleScrapeIsBitwiseEqual) {
  for (int threads : {1, 4}) {
    ThreadPool::SetGlobalSize(threads);
    auto scrape = [] {
      Rng rng(303);
      Tensor a = Tensor::Randn({41, 33}, rng, 1.0f, /*requires_grad=*/true);
      Tensor b = Tensor::Randn({33, 13}, rng, 1.0f, /*requires_grad=*/true);
      Tensor bias = Tensor::Randn({13}, rng, 1.0f, /*requires_grad=*/true);
      Tensor y = tensor::AddBias(tensor::MatMul(a, b), bias);
      Tensor loss = tensor::Add(tensor::Sum(y), tensor::Sum(tensor::RowSum(
                                                    tensor::Square(y))));
      loss.Backward();
      std::vector<std::vector<float>> out = {y.ToVector(), a.grad(), b.grad(),
                                             bias.grad(), loss.ToVector()};
      return out;
    };
    const auto first = scrape();
    const auto second = scrape();
    EXPECT_EQ(first, second) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Tape correctness: training on the tape is bitwise identical to eager,
// survives kill+resume, and stops allocating after warmup.
// ---------------------------------------------------------------------------

class TapeTrainingTest : public KernelTestBase {};

data::ReviewDataset SmallCorpus() {
  data::ReviewDataset ds(6, 5);
  const char* texts[] = {
      "great pasta and friendly staff",  "terrible service avoid this",
      "amazing deal best place in town", "okay food nothing special",
      "worst scam ever do not go",       "lovely ambiance great wine",
      "decent prices quick service",     "fantastic best pasta in town",
  };
  int64_t ts = 0;
  for (int64_t u = 0; u < 6; ++u) {
    for (int64_t i = 0; i < 5; ++i) {
      data::Review r;
      r.user = u;
      r.item = i;
      r.rating = static_cast<float>(1 + (u * 3 + i * 2) % 5);
      r.timestamp = ++ts;
      r.text = texts[(u * 5 + i) % 8];
      r.label = ((u + i) % 4 == 0) ? data::ReliabilityLabel::kFake
                                   : data::ReliabilityLabel::kBenign;
      ds.Add(r);
    }
  }
  ds.BuildIndex();
  return ds;
}

core::RrreConfig SmallConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  c.lr = 5e-3;
  return c;
}

struct FitResult {
  std::vector<double> losses;
  std::vector<float> params;
  std::vector<double> ratings;
  std::vector<double> reliabilities;
};

FitResult RunFit(const core::RrreConfig& config, int threads) {
  ThreadPool::SetGlobalSize(threads);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreTrainer trainer(config);
  FitResult res;
  trainer.Fit(corpus, [&](const core::RrreTrainer::EpochStats& s) {
    res.losses.push_back(s.loss);
  });
  for (const Tensor& p : trainer.model().Parameters()) {
    const std::vector<float> v = p.ToVector();
    res.params.insert(res.params.end(), v.begin(), v.end());
  }
  auto preds = trainer.PredictDataset(corpus);
  res.ratings = preds.ratings;
  res.reliabilities = preds.reliabilities;
  return res;
}

TEST_F(TapeTrainingTest, TapeMatchesEagerBitwise) {
  // The headline claim behind `--tape` defaulting on: taped + fused training
  // reaches the exact bits of the eager path — losses, every parameter, and
  // downstream predictions — on both the whole-batch and sharded paths, for
  // serial and parallel pools.
  for (int64_t shard : {int64_t{0}, int64_t{4}}) {
    core::RrreConfig eager_config = SmallConfig();
    eager_config.shard_size = shard;
    eager_config.use_tape = false;
    core::RrreConfig taped_config = eager_config;
    taped_config.use_tape = true;
    const FitResult eager = RunFit(eager_config, 1);
    for (int threads : {1, 4}) {
      const FitResult taped = RunFit(taped_config, threads);
      EXPECT_EQ(taped.losses, eager.losses)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(taped.params, eager.params)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(taped.ratings, eager.ratings)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(taped.reliabilities, eager.reliabilities)
          << "shard=" << shard << " threads=" << threads;
    }
  }
}

TEST_F(TapeTrainingTest, TapeRunsAreBitwiseRepeatable) {
  core::RrreConfig config = SmallConfig();
  config.shard_size = 4;
  config.use_tape = true;
  const FitResult first = RunFit(config, 4);
  const FitResult second = RunFit(config, 4);
  EXPECT_EQ(first.losses, second.losses);
  EXPECT_EQ(first.params, second.params);
  EXPECT_EQ(first.ratings, second.ratings);
  EXPECT_EQ(first.reliabilities, second.reliabilities);
}

TEST_F(TapeTrainingTest, ArenaStopsAllocatingAfterWarmup) {
  ThreadPool::SetGlobalSize(2);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 4;  // 30 examples / batch 16 -> 2 steps per epoch, 8 total
  config.use_tape = true;
  core::RrreTrainer trainer(config);
  trainer.Fit(corpus);
  const tensor::BatchTape::Stats stats = trainer.TapeStats();
  EXPECT_EQ(stats.steps, 8);
  EXPECT_GT(stats.nodes, 0);
  // Steady state: after the first full batch and the first tail batch have
  // each been traced once, every later step serves all its value buffers
  // from the pool. Allocations are therefore bounded by the nodes of the
  // first two steps — at most a quarter of the total over 8 steps.
  EXPECT_LE(stats.buffer_allocs, stats.nodes / 4)
      << "arena keeps allocating after warmup";
  EXPECT_GE(stats.buffer_reuses, stats.nodes / 2);
  // A static training graph traces the same op sequence every step: one
  // fingerprint for the full batch, one for the tail.
  EXPECT_LE(stats.distinct_sequences, 3);
}

TEST_F(TapeTrainingTest, ShardedArenaStopsAllocatingAfterWarmup) {
  ThreadPool::SetGlobalSize(4);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 4;
  config.shard_size = 4;
  config.use_tape = true;
  core::RrreTrainer trainer(config);
  trainer.Fit(corpus);
  const tensor::BatchTape::Stats stats = trainer.TapeStats();
  EXPECT_GT(stats.steps, 0);
  EXPECT_GT(stats.nodes, 0);
  EXPECT_LE(stats.buffer_allocs, stats.nodes / 4);
  EXPECT_GE(stats.buffer_reuses, stats.nodes / 2);
  // Per shard: full-shard shape, tail-shard shape, and the shard-0 tape also
  // hosts the whole-batch L2 join.
  EXPECT_LE(stats.distinct_sequences,
            3 * static_cast<int64_t>((config.batch_size + 3) / 4));
}

std::vector<float> FlattenParams(const core::RrreTrainer& trainer) {
  std::vector<float> params;
  for (const Tensor& p : trainer.model().Parameters()) {
    const std::vector<float> v = p.ToVector();
    params.insert(params.end(), v.begin(), v.end());
  }
  return params;
}

void RemoveCheckpoint(const std::string& prefix) {
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(TapeTrainingTest, KillThenResumeThroughTapeIsBitwise) {
  // The resume path re-creates the trainer (fresh tapes) mid-schedule; the
  // warm-started arena must not perturb a single bit. With replay on (the
  // default) the resumed run re-records its graphs from scratch and then
  // replays them — the stats check pins that replay actually engaged.
  ThreadPool::SetGlobalSize(2);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 4;
  config.use_tape = true;

  core::RrreTrainer straight(config);
  straight.Fit(corpus);

  const std::string prefix = ::testing::TempDir() + "/tape_resume_ckpt";
  {
    core::RrreConfig half = config;
    half.epochs = 2;
    core::RrreTrainer first(half);
    first.Fit(corpus);
    ASSERT_TRUE(first.Save(prefix).ok());
  }
  core::RrreTrainer resumed(config);
  ASSERT_TRUE(resumed.Load(prefix).ok());
  ASSERT_TRUE(resumed.Resume().ok());
  EXPECT_EQ(FlattenParams(resumed), FlattenParams(straight));
  EXPECT_GT(resumed.TapeStats().replay_steps, 0)
      << "resume never reached a replayed step";
  const auto expect = straight.PredictDataset(corpus);
  const auto actual = resumed.PredictDataset(corpus);
  EXPECT_EQ(actual.ratings, expect.ratings);
  EXPECT_EQ(actual.reliabilities, expect.reliabilities);
  RemoveCheckpoint(prefix);
}

// ---------------------------------------------------------------------------
// Compiled replay: steady-state steps execute the recorded backward schedule
// with zero DFS work and zero closure rebuilds, bitwise identical both to
// eager training and to the rebuild-every-step tape.
// ---------------------------------------------------------------------------

TEST_F(TapeTrainingTest, ReplayMatchesRebuildEveryStepBitwise) {
  // --tape_replay=false is the escape hatch back to PR 9's rebuild-every-step
  // tape; flipping it must never change a bit, for whole-batch and sharded
  // training on serial and parallel pools.
  for (int64_t shard : {int64_t{0}, int64_t{4}}) {
    core::RrreConfig rebuild_config = SmallConfig();
    rebuild_config.shard_size = shard;
    rebuild_config.use_tape = true;
    rebuild_config.tape_replay = false;
    core::RrreConfig replay_config = rebuild_config;
    replay_config.tape_replay = true;
    const FitResult rebuild = RunFit(rebuild_config, 1);
    for (int threads : {1, 4}) {
      const FitResult replay = RunFit(replay_config, threads);
      EXPECT_EQ(replay.losses, rebuild.losses)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(replay.params, rebuild.params)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(replay.ratings, rebuild.ratings)
          << "shard=" << shard << " threads=" << threads;
      EXPECT_EQ(replay.reliabilities, rebuild.reliabilities)
          << "shard=" << shard << " threads=" << threads;
    }
  }
}

TEST_F(TapeTrainingTest, ReplaySteadyStateDoesNoGraphWork) {
  // 30 examples / batch 16 -> a 16-example and a 14-example graph per epoch.
  // Each key records on its first step and replays ever after, so doubling
  // the epochs must add zero DFS node visits and zero closure allocations —
  // all graph-building work happened during warmup.
  ThreadPool::SetGlobalSize(2);
  data::ReviewDataset corpus = SmallCorpus();
  auto run = [&](int64_t epochs, int64_t shard) {
    core::RrreConfig config = SmallConfig();
    config.epochs = epochs;
    config.shard_size = shard;
    config.use_tape = true;
    core::RrreTrainer trainer(config);
    trainer.Fit(corpus);
    return trainer.TapeStats();
  };
  for (int64_t shard : {int64_t{0}, int64_t{4}}) {
    const tensor::BatchTape::Stats warm = run(4, shard);
    const tensor::BatchTape::Stats longer = run(8, shard);
    EXPECT_EQ(warm.replay_fallbacks, 0) << "shard=" << shard;
    EXPECT_EQ(longer.replay_fallbacks, 0) << "shard=" << shard;
    EXPECT_GT(longer.replay_steps, warm.replay_steps) << "shard=" << shard;
    EXPECT_GT(longer.replay_backwards, 0) << "shard=" << shard;
    // The tentpole claim: steady state rebuilds nothing. Every DFS visit and
    // every closure allocation belongs to the recording steps, which do not
    // grow with epochs.
    EXPECT_EQ(longer.dfs_node_visits, warm.dfs_node_visits)
        << "shard=" << shard << ": replay still walks the graph";
    EXPECT_EQ(longer.closure_allocs, warm.closure_allocs)
        << "shard=" << shard << ": replay still rebuilds closures";
  }
}

TEST_F(TapeTrainingTest, WholeBatchReplayCountsEveryNonRecordingStep) {
  ThreadPool::SetGlobalSize(2);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 4;  // 8 steps: keys 16 and 14, each recorded exactly once
  config.use_tape = true;
  core::RrreTrainer trainer(config);
  trainer.Fit(corpus);
  const tensor::BatchTape::Stats stats = trainer.TapeStats();
  EXPECT_EQ(stats.steps, 8);
  EXPECT_EQ(stats.replay_steps, 6);
  EXPECT_EQ(stats.replay_fallbacks, 0);
}

TEST_F(TapeTrainingTest, StatsCountTailBatchFingerprintImmediately) {
  // Regression: the final step's fingerprint used to be folded into
  // distinct_sequences only by the NEXT BeginStep()/Clear(), so stats read
  // right after the tail batch under-reported by one. One epoch ends on the
  // first 14-example step ever traced; its fingerprint must already count.
  ThreadPool::SetGlobalSize(2);
  data::ReviewDataset corpus = SmallCorpus();
  core::RrreConfig config = SmallConfig();
  config.epochs = 1;  // steps: 16 examples, then the 14-example tail — stop
  config.use_tape = true;
  core::RrreTrainer trainer(config);
  trainer.Fit(corpus);
  const tensor::BatchTape::Stats stats = trainer.TapeStats();
  EXPECT_EQ(stats.steps, 2);
  EXPECT_EQ(stats.distinct_sequences, 2)
      << "tail-batch fingerprint not finalized until the next step";
}

TEST_F(TapeTrainingTest, StatsCountOpenStepFingerprintLazily) {
  // Same regression at the tape level: an open step's fingerprint shows up
  // in stats() without waiting for the next BeginStep, and is not double
  // counted once that step does arrive.
  tensor::BatchTape tape;
  tape.SetReplayEnabled(false);
  tensor::BatchTape::Scope scope(&tape);
  tape.BeginStep(1);
  { Tensor a = Tensor::Full({4}, 1.0f); }
  EXPECT_EQ(tape.stats().distinct_sequences, 1);
  tape.BeginStep(1);
  { Tensor a = Tensor::Full({4}, 1.0f); }
  EXPECT_EQ(tape.stats().distinct_sequences, 1) << "same trace counted twice";
  tape.BeginStep(2);
  { Tensor a = Tensor::Full({3}, 1.0f); }
  EXPECT_EQ(tape.stats().distinct_sequences, 2)
      << "open tail fingerprint missing";
}

TEST_F(TapeTrainingTest, HeldThenDroppedSubgraphCollapsesInOnePass) {
  // Regression: the retained-list sweep used to push survivors back in
  // reverse creation order, so a child was revisited before its parent on
  // the next sweep and a dropped chain of N nodes took N sweeps to recycle.
  // Survivors must keep creation order: recycling the head of a dead chain
  // clears its parent edges first, collapsing the whole chain in one pass.
  tensor::BatchTape tape;
  tape.SetReplayEnabled(false);
  tensor::BatchTape::Scope scope(&tape);
  tape.BeginStep(1);
  Tensor held;
  {
    Tensor a = Tensor::Full({8}, 1.0f, /*requires_grad=*/true);
    Tensor b = tensor::MulScalar(a, 2.0f);
    held = tensor::MulScalar(b, 3.0f);  // keeps b and a alive via parents
  }
  tape.BeginStep(1);  // sweep: all three survive, root still held
  held = Tensor();    // drop the root -> the whole chain is dead
  const tensor::BatchTape::Stats before = tape.stats();
  tape.BeginStep(1);  // sweep: the chain must collapse into the pool NOW
  {
    Tensor a = Tensor::Full({8}, 1.0f, /*requires_grad=*/true);
    Tensor b = tensor::MulScalar(a, 2.0f);
    Tensor c = tensor::MulScalar(b, 3.0f);
    const tensor::BatchTape::Stats after = tape.stats();
    EXPECT_EQ(after.buffer_allocs, before.buffer_allocs)
        << "dead chain was not fully recycled by a single sweep";
    EXPECT_EQ(after.buffer_reuses, before.buffer_reuses + 3);
  }
}

TEST_F(TapeTrainingTest, ClearMidRunInvalidatesReplayCacheBitwise) {
  // Clear() drops the arena AND the compiled graphs. A run that clears
  // mid-stream must re-record transparently (no fallbacks, replay resumes)
  // and stay bitwise identical to an uninterrupted run.
  auto run = [&](int clear_after) {
    tensor::BatchTape tape;
    std::vector<float> w(4, 0.5f);
    for (int step = 0; step < 8; ++step) {
      if (step == clear_after) tape.Clear();
      tensor::BatchTape::Scope scope(&tape);
      tape.BeginStep(4);
      Tensor weights = Tensor::FromVector({4}, w, /*requires_grad=*/true);
      std::vector<float> xs(4);
      for (int i = 0; i < 4; ++i) {
        xs[static_cast<size_t>(i)] = 0.25f * static_cast<float>(step + i + 1);
      }
      Tensor x = Tensor::FromVector({4}, xs, /*requires_grad=*/false);
      Tensor loss = tensor::Sum(tensor::Mul(weights, x));
      loss.Backward();
      const std::vector<float>& g = weights.grad();
      for (int i = 0; i < 4; ++i) {
        w[static_cast<size_t>(i)] -= 0.1f * g[static_cast<size_t>(i)];
      }
    }
    return std::make_pair(w, tape.stats());
  };
  const auto [w_straight, s_straight] = run(/*clear_after=*/-1);
  const auto [w_cleared, s_cleared] = run(/*clear_after=*/4);
  EXPECT_EQ(w_cleared, w_straight);
  EXPECT_EQ(s_straight.replay_fallbacks, 0);
  EXPECT_EQ(s_cleared.replay_fallbacks, 0)
      << "Clear() should drop graphs, not trip the fallback path";
  // Uninterrupted: record on step 0, replay 7. Cleared at 4: re-record once,
  // replay 3 + 3.
  EXPECT_EQ(s_straight.replay_steps, 7);
  EXPECT_EQ(s_cleared.replay_steps, 6);
}

TEST_F(TapeTrainingTest, NestedScopesRestoreTheOuterTape) {
  // The sharded L2 join nests a tapes_[0] scope inside the step that built
  // the shard losses; Scope must restore whatever was active, not null.
  tensor::BatchTape outer;
  tensor::BatchTape inner;
  EXPECT_EQ(tensor::BatchTape::Active(), nullptr);
  {
    tensor::BatchTape::Scope s_outer(&outer);
    EXPECT_EQ(tensor::BatchTape::Active(), &outer);
    outer.BeginStep(1);
    { Tensor a = Tensor::Full({2}, 1.0f); }
    {
      tensor::BatchTape::Scope s_inner(&inner);
      EXPECT_EQ(tensor::BatchTape::Active(), &inner);
      inner.BeginStep(1);
      { Tensor b = Tensor::Full({2}, 1.0f); }
    }
    EXPECT_EQ(tensor::BatchTape::Active(), &outer);
    { Tensor c = Tensor::Full({2}, 1.0f); }
  }
  EXPECT_EQ(tensor::BatchTape::Active(), nullptr);
  // Each tape owned exactly its own nodes.
  EXPECT_EQ(outer.stats().nodes, 2);
  EXPECT_EQ(inner.stats().nodes, 1);
}

}  // namespace
}  // namespace rrre
