// Tests of the dynamic micro-batching scheduler behind rrre_served:
// correctness against the reference BatchScorer, admission control /
// overload behavior, graceful stop, and hot checkpoint reload under
// concurrent load. This suite runs under ThreadSanitizer in tools/check.sh.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/scorer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/batcher.h"

namespace rrre::serve {
namespace {

using common::Rng;
using common::Status;

core::RrreConfig TinyConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

/// Collects asynchronous batcher completions with a bounded wait.
class Completions {
 public:
  void Add(size_t index, const Status& status,
           std::vector<MicroBatcher::ScoredPair> results) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= slots_.size()) slots_.resize(index + 1);
    slots_[index].done = true;
    slots_[index].status = status;
    slots_[index].results = std::move(results);
    ++done_;
    cv_.notify_all();
  }

  /// True when `n` completions arrived within the deadline.
  bool WaitFor(int64_t n, int seconds = 30) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(seconds),
                        [&] { return done_ >= n; });
  }

  struct Slot {
    bool done = false;
    Status status = Status::Ok();
    std::vector<MicroBatcher::ScoredPair> results;
  };

  Slot slot(size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.at(index);
  }

  int64_t done() {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  int64_t done_ = 0;
};

/// One fitted + checkpointed trainer shared by the suite; each test loads
/// its own trainer instance from the checkpoint (fitting is the expensive
/// part).
class MicroBatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(27);
    corpus_ = new data::ReviewDataset(
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng));
    auto trainer = std::make_unique<core::RrreTrainer>(TinyConfig());
    trainer->Fit(*corpus_);
    // ctest runs every test as its own process, concurrently: the fixture
    // paths must be per-process or parallel tests race on the checkpoint.
    prefix_ = new std::string(::testing::TempDir() + "/batcher_ckpt_" +
                              std::to_string(::getpid()));
    ASSERT_TRUE(trainer->Save(*prefix_).ok());
    reference_trainer_ = trainer.release();
    reference_scorer_ = new core::BatchScorer(reference_trainer_);
  }

  static void TearDownTestSuite() {
    for (const char* suffix :
         {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
      std::remove((*prefix_ + suffix).c_str());
    }
    delete reference_scorer_;
    delete reference_trainer_;
    delete corpus_;
    delete prefix_;
    reference_scorer_ = nullptr;
    reference_trainer_ = nullptr;
    corpus_ = nullptr;
    prefix_ = nullptr;
  }

  static std::unique_ptr<core::RrreTrainer> LoadTrainer() {
    auto trainer = std::make_unique<core::RrreTrainer>(TinyConfig());
    RRRE_CHECK_OK(trainer->Load(*prefix_));
    return trainer;
  }

  static data::ReviewDataset* corpus_;
  static core::RrreTrainer* reference_trainer_;
  static core::BatchScorer* reference_scorer_;
  static std::string* prefix_;
};

data::ReviewDataset* MicroBatcherTest::corpus_ = nullptr;
core::RrreTrainer* MicroBatcherTest::reference_trainer_ = nullptr;
core::BatchScorer* MicroBatcherTest::reference_scorer_ = nullptr;
std::string* MicroBatcherTest::prefix_ = nullptr;

TEST_F(MicroBatcherTest, ScoresMatchReferenceScorer) {
  MicroBatcher::Options options;
  options.max_batch = 16;
  options.max_delay_us = 500;
  MicroBatcher batcher(LoadTrainer(), options);

  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < 40; ++i) {
    pairs.emplace_back(i % corpus_->num_users(), (i * 3) % corpus_->num_items());
  }
  Completions completions;
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(batcher.TrySubmit(
        pairs[i].first, pairs[i].second,
        [&completions, i](const Status& status,
                          const std::vector<MicroBatcher::ScoredPair>& r) {
          completions.Add(i, status, r);
        }));
  }
  ASSERT_TRUE(completions.WaitFor(static_cast<int64_t>(pairs.size())));

  // A trainer loaded from the same checkpoint must score identically — the
  // batcher is a scheduler, not a different model.
  const auto reference = reference_scorer_->Score(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto slot = completions.slot(i);
    ASSERT_TRUE(slot.status.ok()) << slot.status.ToString();
    ASSERT_EQ(slot.results.size(), 1u);
    EXPECT_EQ(slot.results[0].user, pairs[i].first);
    EXPECT_EQ(slot.results[0].item, pairs[i].second);
    EXPECT_DOUBLE_EQ(slot.results[0].rating, reference.ratings[i]) << i;
    EXPECT_DOUBLE_EQ(slot.results[0].reliability, reference.reliabilities[i])
        << i;
  }

  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.submitted, 40);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.pairs_scored, 40);
  EXPECT_GE(stats.batches, 1);
  EXPECT_EQ(stats.batch_pairs.count(), stats.batches);
  EXPECT_EQ(stats.batch_latency_us.count(), stats.batches);
}

TEST_F(MicroBatcherTest, ConcurrentSubmittersAllComplete) {
  MicroBatcher::Options options;
  options.max_batch = 8;
  options.max_delay_us = 200;
  MicroBatcher batcher(LoadTrainer(), options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  Completions completions;
  std::vector<std::pair<int64_t, int64_t>> pairs(kThreads * kPerThread);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int n = 0; n < kPerThread; ++n) {
        const size_t index = static_cast<size_t>(t * kPerThread + n);
        const int64_t user = (t * 7 + n) % corpus_->num_users();
        const int64_t item = (t * 11 + n * 3) % corpus_->num_items();
        pairs[index] = {user, item};
        ASSERT_TRUE(batcher.TrySubmit(
            user, item,
            [&completions, index](
                const Status& status,
                const std::vector<MicroBatcher::ScoredPair>& r) {
              completions.Add(index, status, r);
            }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  ASSERT_TRUE(completions.WaitFor(kThreads * kPerThread));

  const auto reference = reference_scorer_->Score(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto slot = completions.slot(i);
    ASSERT_TRUE(slot.status.ok());
    ASSERT_EQ(slot.results.size(), 1u);
    EXPECT_DOUBLE_EQ(slot.results[0].rating, reference.ratings[i]) << i;
    EXPECT_DOUBLE_EQ(slot.results[0].reliability, reference.reliabilities[i])
        << i;
  }
  EXPECT_EQ(batcher.stats().pairs_scored, kThreads * kPerThread);
}

TEST_F(MicroBatcherTest, CatalogRequestExpandsAllItemsInOrder) {
  MicroBatcher batcher(LoadTrainer(), MicroBatcher::Options{});
  Completions completions;
  ASSERT_TRUE(batcher.TrySubmit(
      3, MicroBatcher::kCatalogItem,
      [&completions](const Status& status,
                     const std::vector<MicroBatcher::ScoredPair>& r) {
        completions.Add(0, status, r);
      }));
  ASSERT_TRUE(completions.WaitFor(1));
  const auto slot = completions.slot(0);
  ASSERT_TRUE(slot.status.ok());
  ASSERT_EQ(static_cast<int64_t>(slot.results.size()), corpus_->num_items());
  const auto reference = reference_scorer_->ScoreAllItemsForUser(3);
  for (size_t i = 0; i < slot.results.size(); ++i) {
    EXPECT_EQ(slot.results[i].user, 3);
    EXPECT_EQ(slot.results[i].item, static_cast<int64_t>(i));
    EXPECT_DOUBLE_EQ(slot.results[i].rating, reference.ratings[i]);
    EXPECT_DOUBLE_EQ(slot.results[i].reliability, reference.reliabilities[i]);
  }
}

TEST_F(MicroBatcherTest, AdmissionControlRejectsWhenQueueFull) {
  MicroBatcher::Options options;
  options.queue_capacity = 4;
  options.start_paused = true;  // Deterministic: nothing drains the queue.
  MicroBatcher batcher(LoadTrainer(), options);

  Completions completions;
  auto submit = [&](size_t index) {
    return batcher.TrySubmit(
        0, 0,
        [&completions, index](const Status& status,
                              const std::vector<MicroBatcher::ScoredPair>& r) {
          completions.Add(index, status, r);
        });
  };
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(submit(i)) << i;
  EXPECT_FALSE(submit(4));  // Queue full: reject, never block.
  EXPECT_FALSE(submit(5));
  EXPECT_EQ(batcher.stats().rejected, 2);
  EXPECT_EQ(completions.done(), 0);  // Nothing executed while paused.

  batcher.Resume();
  ASSERT_TRUE(completions.WaitFor(4));
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(completions.slot(i).status.ok());
  EXPECT_EQ(batcher.stats().pairs_scored, 4);
}

TEST_F(MicroBatcherTest, StopDrainsAdmittedRequestsEvenWhenPaused) {
  MicroBatcher::Options options;
  options.start_paused = true;
  MicroBatcher batcher(LoadTrainer(), options);
  Completions completions;
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(batcher.TrySubmit(
        static_cast<int64_t>(i), 1,
        [&completions, i](const Status& status,
                          const std::vector<MicroBatcher::ScoredPair>& r) {
          completions.Add(i, status, r);
        }));
  }
  batcher.Stop();  // Overrides the pause and drains before joining.
  EXPECT_EQ(completions.done(), 6);
  for (size_t i = 0; i < 6; ++i) EXPECT_TRUE(completions.slot(i).status.ok());
  // After Stop, admission is closed.
  EXPECT_FALSE(batcher.TrySubmit(0, 0, nullptr));
}

TEST_F(MicroBatcherTest, OutOfRangeIdsFailCleanlyAtExecution) {
  MicroBatcher batcher(LoadTrainer(), MicroBatcher::Options{});
  Completions completions;
  ASSERT_TRUE(batcher.TrySubmit(
      corpus_->num_users() + 100, 0,
      [&completions](const Status& status,
                     const std::vector<MicroBatcher::ScoredPair>& r) {
        completions.Add(0, status, r);
      }));
  ASSERT_TRUE(completions.WaitFor(1));
  const auto slot = completions.slot(0);
  EXPECT_FALSE(slot.status.ok());
  EXPECT_EQ(slot.status.code(), common::StatusCode::kOutOfRange);
  EXPECT_TRUE(slot.results.empty());
}

TEST_F(MicroBatcherTest, ReloadSwapsSnapshotAndBumpsGeneration) {
  MicroBatcher batcher(LoadTrainer(), MicroBatcher::Options{});
  EXPECT_EQ(batcher.generation(), 0);
  const int64_t version_before = batcher.params_version();

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status reload_status = Status::Ok();
  int64_t generation = -2;
  batcher.RequestReload(*prefix_, [&](const Status& s, int64_t g) {
    std::lock_guard<std::mutex> lock(mu);
    reload_status = s;
    generation = g;
    done = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return done; }));
  }
  EXPECT_TRUE(reload_status.ok()) << reload_status.ToString();
  EXPECT_EQ(generation, 1);
  EXPECT_EQ(batcher.generation(), 1);
  EXPECT_EQ(batcher.stats().reloads, 1);
  // Same checkpoint loaded into a fresh trainer: same params_version value
  // (one Load bump) and identical scores.
  EXPECT_EQ(batcher.params_version(), version_before);

  Completions completions;
  ASSERT_TRUE(batcher.TrySubmit(
      1, 2,
      [&completions](const Status& status,
                     const std::vector<MicroBatcher::ScoredPair>& r) {
        completions.Add(0, status, r);
      }));
  ASSERT_TRUE(completions.WaitFor(1));
  const auto reference = reference_scorer_->Score({{1, 2}});
  EXPECT_DOUBLE_EQ(completions.slot(0).results[0].rating,
                   reference.ratings[0]);
}

TEST_F(MicroBatcherTest, FailedReloadKeepsServingOldSnapshot) {
  MicroBatcher batcher(LoadTrainer(), MicroBatcher::Options{});
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status reload_status = Status::Ok();
  batcher.RequestReload(::testing::TempDir() + "/no_such_checkpoint",
                        [&](const Status& s, int64_t) {
                          std::lock_guard<std::mutex> lock(mu);
                          reload_status = s;
                          done = true;
                          cv.notify_all();
                        });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return done; }));
  }
  EXPECT_FALSE(reload_status.ok());
  EXPECT_EQ(batcher.generation(), 0);
  EXPECT_EQ(batcher.stats().reloads, 0);

  // The old snapshot still serves, bit-for-bit.
  Completions completions;
  ASSERT_TRUE(batcher.TrySubmit(
      2, 3,
      [&completions](const Status& status,
                     const std::vector<MicroBatcher::ScoredPair>& r) {
        completions.Add(0, status, r);
      }));
  ASSERT_TRUE(completions.WaitFor(1));
  ASSERT_TRUE(completions.slot(0).status.ok());
  const auto reference = reference_scorer_->Score({{2, 3}});
  EXPECT_DOUBLE_EQ(completions.slot(0).results[0].rating,
                   reference.ratings[0]);
}

TEST_F(MicroBatcherTest, HotReloadUnderConcurrentLoadIsSafe) {
  // The acceptance-criteria stress: submitters hammer the queue while
  // reloads swap the snapshot. The batcher CHECKs that no batch ever mixes
  // parameter versions, so a violation aborts the test hard. All admitted
  // requests must still complete (same checkpoint -> identical scores).
  MicroBatcher::Options options;
  options.max_batch = 8;
  options.max_delay_us = 100;
  MicroBatcher batcher(LoadTrainer(), options);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 25;
  Completions completions;
  std::atomic<int64_t> accepted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int n = 0; n < kPerThread; ++n) {
        const size_t index = static_cast<size_t>(t * kPerThread + n);
        if (batcher.TrySubmit(
                (t + n) % corpus_->num_users(), n % corpus_->num_items(),
                [&completions, index](
                    const Status& status,
                    const std::vector<MicroBatcher::ScoredPair>& r) {
                  completions.Add(index, status, r);
                })) {
          accepted.fetch_add(1);
        }
        if (n % 8 == 0) std::this_thread::yield();
      }
    });
  }
  std::atomic<int64_t> reloads_done{0};
  std::thread reloader([&] {
    for (int r = 0; r < 3; ++r) {
      batcher.RequestReload(*prefix_, [&](const Status& s, int64_t) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        reloads_done.fetch_add(1);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  for (auto& t : submitters) t.join();
  reloader.join();
  batcher.Drain();
  batcher.Stop();
  EXPECT_EQ(completions.done(), accepted.load());
  EXPECT_EQ(batcher.generation(), 3);
  EXPECT_EQ(reloads_done.load(), 3);
  // Spot-check correctness across the reload boundary: every completed
  // request scored exactly as the reference (the checkpoint never changed).
  for (int t = 0; t < kThreads; ++t) {
    const size_t index = static_cast<size_t>(t * kPerThread);
    const auto slot = completions.slot(index);
    if (!slot.done || !slot.status.ok()) continue;
    const auto reference = reference_scorer_->Score(
        {{(t + 0) % corpus_->num_users(), 0 % corpus_->num_items()}});
    EXPECT_DOUBLE_EQ(slot.results[0].rating, reference.ratings[0]);
  }
}

}  // namespace
}  // namespace rrre::serve
