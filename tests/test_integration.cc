// End-to-end integration tests: a miniature version of the paper's
// experimental pipeline, asserting the robust qualitative claims (with
// generous margins — exact values belong to the bench harness).

#include <gtest/gtest.h>

#include <memory>

#include "baselines/rev2.h"
#include "common/rng.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace rrre {
namespace {

using common::Rng;

class MiniPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2026);
    corpus_ = new data::ReviewDataset(data::GenerateSyntheticDataset(
        data::YelpChiProfile(0.12), rng));
    Rng split_rng(7);
    auto [train, test] = corpus_->Split(0.7, split_rng);
    train_ = new data::ReviewDataset(std::move(train));
    test_ = new data::ReviewDataset(std::move(test));

    core::RrreConfig config;
    config.word_dim = 12;
    config.rev_dim = 16;
    config.id_dim = 8;
    config.attention_dim = 8;
    config.max_tokens = 12;
    config.s_u = 4;
    config.s_i = 6;
    config.epochs = 6;
    trainer_ = new core::RrreTrainer(config);
    trainer_->Fit(*train_);
  }

  static void TearDownTestSuite() {
    delete trainer_;
    delete test_;
    delete train_;
    delete corpus_;
    trainer_ = nullptr;
    test_ = train_ = corpus_ = nullptr;
  }

  static std::vector<int> TestLabels() {
    std::vector<int> labels;
    for (const auto& r : test_->reviews()) {
      labels.push_back(r.is_benign() ? 1 : 0);
    }
    return labels;
  }

  static data::ReviewDataset* corpus_;
  static data::ReviewDataset* train_;
  static data::ReviewDataset* test_;
  static core::RrreTrainer* trainer_;
};

data::ReviewDataset* MiniPipelineTest::corpus_ = nullptr;
data::ReviewDataset* MiniPipelineTest::train_ = nullptr;
data::ReviewDataset* MiniPipelineTest::test_ = nullptr;
core::RrreTrainer* MiniPipelineTest::trainer_ = nullptr;

TEST_F(MiniPipelineTest, ReliabilityRankingWellAboveChance) {
  auto preds = trainer_->PredictDatasetTransductive(*test_);
  EXPECT_GT(eval::Auc(preds.reliabilities, TestLabels()), 0.65);
}

TEST_F(MiniPipelineTest, CompetitiveWithRev2OnHeldOut) {
  // The paper's claim on Yelp-shaped data is that RRRE clearly beats the
  // rating-only graph method.
  auto preds = trainer_->PredictDatasetTransductive(*test_);
  baselines::Rev2 rev2;
  rev2.Fit(*train_);
  const auto labels = TestLabels();
  EXPECT_GT(eval::Auc(preds.reliabilities, labels),
            eval::Auc(rev2.ScoreReviews(*test_), labels));
}

TEST_F(MiniPipelineTest, BiasedRmseBeatsPredictingTheMean) {
  auto preds = trainer_->PredictDataset(*test_);
  std::vector<double> targets;
  for (const auto& r : test_->reviews()) targets.push_back(r.rating);
  double mean = 0.0;
  for (const auto& r : train_->reviews()) mean += r.rating;
  mean /= static_cast<double>(train_->size());
  const auto labels = TestLabels();
  EXPECT_LT(eval::BiasedRmse(preds.ratings, targets, labels),
            eval::BiasedRmse(std::vector<double>(targets.size(), mean),
                             targets, labels) +
                0.02);
}

TEST_F(MiniPipelineTest, ExplanationsAreMostlyBenign) {
  // Across well-reviewed items, the explanation selector should surface
  // genuinely benign reviews far more often than the corpus base rate of
  // campaign reviews would suggest.
  core::ReliableRecommender recommender(trainer_);
  int64_t shown = 0;
  int64_t benign = 0;
  for (int64_t item = 0; item < train_->num_items(); ++item) {
    if (train_->ReviewsByItem(item).size() < 5) continue;
    for (const auto& e : recommender.Explain(item, 2, 5)) {
      ++shown;
      benign += train_->review(e.review_index).is_benign() ? 1 : 0;
    }
  }
  ASSERT_GT(shown, 30);
  EXPECT_GT(static_cast<double>(benign) / static_cast<double>(shown), 0.9);
}

TEST_F(MiniPipelineTest, RecommendationsCarryReliabilityMetadata) {
  core::ReliableRecommender recommender(trainer_);
  auto recs = recommender.Recommend(/*user=*/1, /*top_k=*/3,
                                    /*candidate_pool=*/12);
  ASSERT_EQ(recs.size(), 3u);
  for (const auto& rec : recs) {
    EXPECT_GE(rec.reliability, 0.0);
    EXPECT_LE(rec.reliability, 1.0);
    EXPECT_GT(rec.rating, 0.0);
  }
}

}  // namespace
}  // namespace rrre
