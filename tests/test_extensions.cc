// Tests of the extension features: vocabulary persistence, trainer
// checkpointing, and the semi-supervised self-training loop (the paper's
// Sec. V future work).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/semi_supervised.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "text/vocab.h"

namespace rrre {
namespace {

using common::Rng;

core::RrreConfig TinyConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

data::ReviewDataset TinyCorpus(uint64_t seed = 9) {
  Rng rng(seed);
  return data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng);
}

// ---------------------------------------------------------------------------
// Vocabulary persistence
// ---------------------------------------------------------------------------

TEST(VocabPersistenceTest, SaveLoadRoundTrip) {
  text::Vocabulary v = text::Vocabulary::Build(
      {{"good", "food"}, {"good", "beer"}}, /*min_count=*/1);
  const std::string path = ::testing::TempDir() + "/vocab_rt.txt";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = text::Vocabulary::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), v.size());
  for (int64_t id = 0; id < v.size(); ++id) {
    EXPECT_EQ(loaded.value().Token(id), v.Token(id));
    EXPECT_EQ(loaded.value().Id(v.Token(id)), id);
  }
  std::remove(path.c_str());
}

TEST(VocabPersistenceTest, LoadRejectsMissingSpecials) {
  const std::string path = ::testing::TempDir() + "/vocab_bad.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("good\nfood\n", f);
  std::fclose(f);
  EXPECT_FALSE(text::Vocabulary::Load(path).ok());
  std::remove(path.c_str());
}

TEST(VocabPersistenceTest, LoadRejectsDuplicates) {
  const std::string path = ::testing::TempDir() + "/vocab_dup.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("<pad>\n<unk>\ngood\ngood\n", f);
  std::fclose(f);
  EXPECT_FALSE(text::Vocabulary::Load(path).ok());
  std::remove(path.c_str());
}

TEST(VocabPersistenceTest, LoadMissingFileFails) {
  EXPECT_FALSE(text::Vocabulary::Load("/nope/vocab.txt").ok());
}

// ---------------------------------------------------------------------------
// Trainer checkpointing
// ---------------------------------------------------------------------------

TEST(TrainerPersistenceTest, SaveLoadReproducesPredictions) {
  data::ReviewDataset corpus = TinyCorpus();
  core::RrreTrainer trainer(TinyConfig());
  trainer.Fit(corpus);
  const std::string prefix = ::testing::TempDir() + "/rrre_ckpt";
  ASSERT_TRUE(trainer.Save(prefix).ok());

  core::RrreTrainer restored(TinyConfig());
  ASSERT_TRUE(restored.Load(prefix).ok());
  EXPECT_TRUE(restored.fitted());

  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < std::min<int64_t>(corpus.size(), 40); ++i) {
    pairs.emplace_back(corpus.review(i).user, corpus.review(i).item);
  }
  auto a = trainer.PredictPairs(pairs);
  auto b = restored.PredictPairs(pairs);
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  for (size_t i = 0; i < a.ratings.size(); ++i) {
    EXPECT_NEAR(a.ratings[i], b.ratings[i], 1e-5) << i;
    EXPECT_NEAR(a.reliabilities[i], b.reliabilities[i], 1e-5) << i;
  }
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(TrainerPersistenceTest, SaveUnfittedFails) {
  core::RrreTrainer trainer(TinyConfig());
  EXPECT_FALSE(trainer.Save(::testing::TempDir() + "/nofit").ok());
}

TEST(TrainerPersistenceTest, LoadMissingCheckpointFails) {
  core::RrreTrainer trainer(TinyConfig());
  EXPECT_FALSE(trainer.Load("/definitely/not/there").ok());
}

TEST(TrainerPersistenceTest, LoadWithMismatchedConfigFails) {
  data::ReviewDataset corpus = TinyCorpus();
  core::RrreTrainer trainer(TinyConfig());
  trainer.Fit(corpus);
  const std::string prefix = ::testing::TempDir() + "/rrre_mismatch";
  ASSERT_TRUE(trainer.Save(prefix).ok());
  core::RrreConfig other = TinyConfig();
  other.rev_dim = 16;  // Different tower width -> shape mismatch.
  core::RrreTrainer restored(other);
  EXPECT_FALSE(restored.Load(prefix).ok());
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(TrainerPersistenceTest, LegacyScalarMetaLoadsButCannotResume) {
  // Checkpoints written before format v2 stored only the rating offset in
  // .meta and no .optimizer file. They must still load and predict, but
  // Resume must fail with a descriptive error instead of silently
  // restarting the optimizer from zeroed moments.
  data::ReviewDataset corpus = TinyCorpus();
  core::RrreTrainer trainer(TinyConfig());
  trainer.Fit(corpus);
  const std::string prefix = ::testing::TempDir() + "/rrre_legacy";
  ASSERT_TRUE(trainer.Save(prefix).ok());
  // Rewrite .meta in the legacy single-number format and drop .optimizer.
  {
    FILE* f = std::fopen((prefix + ".meta").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%.17g\n", trainer.rating_offset());
    std::fclose(f);
  }
  std::remove((prefix + ".optimizer").c_str());

  core::RrreTrainer restored(TinyConfig());
  ASSERT_TRUE(restored.Load(prefix).ok());
  EXPECT_TRUE(restored.fitted());
  EXPECT_NEAR(restored.rating_offset(), trainer.rating_offset(), 1e-12);
  auto status = restored.Resume();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("optimizer"), std::string::npos)
      << status.ToString();
  for (const char* suffix : {".model", ".vocab", ".train.tsv", ".meta"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(TrainerPersistenceTest, ResumeWithoutLoadFails) {
  core::RrreTrainer trainer(TinyConfig());
  EXPECT_FALSE(trainer.Resume().ok());
}

TEST(TrainerPersistenceTest, SaveCapturesEpochCounter) {
  data::ReviewDataset corpus = TinyCorpus();
  core::RrreTrainer trainer(TinyConfig());  // epochs = 2
  trainer.Fit(corpus);
  EXPECT_EQ(trainer.epochs_completed(), 2);
  const std::string prefix = ::testing::TempDir() + "/rrre_epochs";
  ASSERT_TRUE(trainer.Save(prefix).ok());
  core::RrreTrainer restored(TinyConfig());
  ASSERT_TRUE(restored.Load(prefix).ok());
  EXPECT_EQ(restored.epochs_completed(), 2);
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

// ---------------------------------------------------------------------------
// Semi-supervised self-training
// ---------------------------------------------------------------------------

TEST(SemiSupervisedTest, FitRunsAndRecordsRounds) {
  Rng rng(13);
  data::ReviewDataset corpus = TinyCorpus(21);
  auto [labeled, unlabeled] = corpus.Split(0.5, rng);

  core::SemiSupervisedConfig config;
  config.base = TinyConfig();
  config.rounds = 2;
  config.confidence = 0.8;
  core::SemiSupervisedRrre model(config);
  model.Fit(labeled, unlabeled);

  ASSERT_EQ(model.round_stats().size(), 3u);  // warm-up + 2 rounds.
  for (size_t r = 1; r < model.round_stats().size(); ++r) {
    const auto& s = model.round_stats()[r];
    EXPECT_EQ(s.round, static_cast<int64_t>(r));
    EXPECT_GE(s.pseudo_benign, 0);
    EXPECT_GE(s.pseudo_fake, 0);
    EXPECT_LE(s.pseudo_benign + s.pseudo_fake, unlabeled.size());
  }
  EXPECT_TRUE(model.trainer().fitted());
}

TEST(SemiSupervisedTest, PseudoLabelsMostlyCorrectOnConfidentPool) {
  // With a decently trained base model, adopted pseudo-labels should agree
  // with the hidden ground truth far better than the base rate.
  Rng rng(17);
  Rng gen_rng(29);
  data::ReviewDataset corpus = data::GenerateSyntheticDataset(
      data::YelpChiProfile(0.12), gen_rng);
  auto [labeled, unlabeled] = corpus.Split(0.6, rng);

  core::SemiSupervisedConfig config;
  config.base = TinyConfig();
  config.base.epochs = 4;
  config.rounds = 1;
  config.confidence = 0.95;
  core::SemiSupervisedRrre model(config);
  model.Fit(labeled, unlabeled);

  // Re-derive the adopted pseudo-labels and compare with hidden labels.
  core::RrreTrainer reference(config.base);
  reference.Fit(labeled);
  auto preds = reference.PredictDatasetTransductive(unlabeled);
  int64_t adopted = 0;
  int64_t correct = 0;
  for (int64_t i = 0; i < unlabeled.size(); ++i) {
    const double p = preds.reliabilities[static_cast<size_t>(i)];
    if (p >= config.confidence) {
      ++adopted;
      correct += unlabeled.review(i).is_benign() ? 1 : 0;
    } else if (p <= 1.0 - config.confidence) {
      ++adopted;
      correct += unlabeled.review(i).is_benign() ? 0 : 1;
    }
  }
  ASSERT_GT(adopted, 20);
  EXPECT_GT(static_cast<double>(correct) / adopted, 0.85);
}

TEST(SemiSupervisedTest, ZeroRoundsEqualsSupervised) {
  Rng rng(19);
  data::ReviewDataset corpus = TinyCorpus(33);
  auto [labeled, unlabeled] = corpus.Split(0.5, rng);

  core::SemiSupervisedConfig config;
  config.base = TinyConfig();
  config.rounds = 0;
  core::SemiSupervisedRrre ss(config);
  ss.Fit(labeled, unlabeled);
  core::RrreTrainer supervised(TinyConfig());
  supervised.Fit(labeled);

  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < std::min<int64_t>(unlabeled.size(), 30); ++i) {
    pairs.emplace_back(unlabeled.review(i).user, unlabeled.review(i).item);
  }
  auto a = ss.trainer().PredictPairs(pairs);
  auto b = supervised.PredictPairs(pairs);
  EXPECT_EQ(a.reliabilities, b.reliabilities);
}

}  // namespace
}  // namespace rrre
