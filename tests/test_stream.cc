// Tests for the adversarial fraud arena (src/data/adversary.h) and the
// streaming retrain loop (src/stream): partition determinism across
// regeneration, generation order and thread counts; the per-tier evasion
// properties each escalation is supposed to exhibit; the versioned publish
// layout's crash-safety; kill-then-resume bitwise identity of the driver;
// live hot-reload convergence; and a seeded fault-injection soak
// (StreamFaultsTest, run in the check.sh failpoint leg) proving the daemon
// loop survives injected publish/reload faults on the old snapshot.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/socket.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "core/tower_store.h"
#include "core/trainer.h"
#include "data/adversary.h"
#include "data/profiles.h"
#include "data/wordbanks.h"
#include "serve/router.h"
#include "serve/server.h"
#include "stream/detection.h"
#include "stream/driver.h"
#include "stream/publish.h"

namespace rrre {
namespace {

using data::AdversaryConfig;
using data::AdversaryModel;
using data::AdversaryTier;
using data::ReviewDataset;

// ---------------------------------------------------------------------------
// Helpers

AdversaryConfig TinyArenaConfig() {
  AdversaryConfig config;
  config.profile = data::YelpChiProfile(0.02);
  config.days_per_partition = 250;  // 3 partitions over the 730-day horizon.
  config.schedule = {{0, AdversaryTier::kStatic},
                     {250, AdversaryTier::kParaphrase},
                     {500, AdversaryTier::kCamouflage}};
  config.seed = 42;
  return config;
}

core::RrreConfig TinyTrainerConfig() {
  core::RrreConfig config;
  config.word_dim = 4;
  config.rev_dim = 8;
  config.id_dim = 4;
  config.attention_dim = 4;
  config.fm_factors = 2;
  config.max_tokens = 4;
  config.s_u = 2;
  config.s_i = 2;
  config.epochs = 1;
  config.batch_size = 16;
  config.pretrain_word_vectors = false;
  config.vocab_min_count = 1;
  return config;
}

void ExpectSameReviews(const ReviewDataset& a, const ReviewDataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    const data::Review& ra = a.review(i);
    const data::Review& rb = b.review(i);
    ASSERT_EQ(ra.user, rb.user) << "review " << i;
    ASSERT_EQ(ra.item, rb.item) << "review " << i;
    ASSERT_EQ(ra.rating, rb.rating) << "review " << i;
    ASSERT_EQ(ra.label, rb.label) << "review " << i;
    ASSERT_EQ(ra.timestamp, rb.timestamp) << "review " << i;
    ASSERT_EQ(ra.text, rb.text) << "review " << i;
  }
}

/// The distinctly spammy register: generic superlatives and smear words the
/// static campaigns use and the paraphrase tier must avoid.
std::unordered_set<std::string> SpamRegister() {
  std::unordered_set<std::string> words;
  for (std::string_view w : data::wordbanks::SpamPromote()) {
    words.emplace(w);
  }
  for (std::string_view w : data::wordbanks::SpamDemote()) {
    words.emplace(w);
  }
  return words;
}

/// The live params version of a server, scraped the way the router's health
/// checker and the driver's reload barrier do: the STATS fingerprint= token.
uint64_t ScrapeFingerprint(uint16_t port) {
  auto socket = common::Socket::Connect("127.0.0.1", port);
  EXPECT_TRUE(socket.ok());
  EXPECT_TRUE(socket.value().SendAll("STATS\n").ok());
  common::LineReader reader(&socket.value());
  auto line = reader.ReadLine();
  EXPECT_TRUE(line.ok() && line.value().has_value());
  for (const std::string& token : common::Split(*line.value(), '\t')) {
    if (common::StartsWith(token, "fingerprint=")) {
      return std::strtoull(token.c_str() + sizeof("fingerprint=") - 1,
                           nullptr, 10);
    }
  }
  ADD_FAILURE() << "no fingerprint in STATS: " << *line.value();
  return 0;
}

std::string TempRoot(const std::string& tag) {
  const std::string root =
      "/tmp/rrre_test_stream_" + tag + "_" + std::to_string(::getpid());
  std::system(("rm -rf " + root).c_str());
  return root;
}

// ---------------------------------------------------------------------------
// Arena determinism

TEST(ArenaTest, RegenerationIsDeterministic) {
  const AdversaryModel a(TinyArenaConfig());
  const AdversaryModel b(TinyArenaConfig());
  ASSERT_EQ(a.num_partitions(), 3);
  for (int64_t k = 0; k < a.num_partitions(); ++k) {
    ExpectSameReviews(a.Partition(k), b.Partition(k));
    ExpectSameReviews(a.EvalSlice(k), b.EvalSlice(k));
  }
}

TEST(ArenaTest, GenerationOrderDoesNotMatter) {
  const AdversaryModel model(TinyArenaConfig());
  // Generate out of order, with eval slices interleaved, then regenerate in
  // order: the keyed forks must make every slice order-independent.
  const ReviewDataset p2 = model.Partition(2);
  const ReviewDataset e1 = model.EvalSlice(1);
  const ReviewDataset p0 = model.Partition(0);
  ExpectSameReviews(p0, model.Partition(0));
  ExpectSameReviews(e1, model.EvalSlice(1));
  ExpectSameReviews(p2, model.Partition(2));
}

TEST(ArenaTest, ThreadCountDoesNotChangePartitions) {
  const int original = common::ThreadPool::GlobalSize();
  common::ThreadPool::SetGlobalSize(1);
  const AdversaryModel a(TinyArenaConfig());
  std::vector<ReviewDataset> at_one;
  for (int64_t k = 0; k < a.num_partitions(); ++k) {
    at_one.push_back(a.Partition(k));
  }
  common::ThreadPool::SetGlobalSize(4);
  const AdversaryModel b(TinyArenaConfig());
  for (int64_t k = 0; k < b.num_partitions(); ++k) {
    ExpectSameReviews(at_one[k], b.Partition(k));
  }
  common::ThreadPool::SetGlobalSize(original);
}

TEST(ArenaTest, CumulativeThroughConcatenatesPartitions) {
  const AdversaryModel model(TinyArenaConfig());
  const ReviewDataset cumulative = model.CumulativeThrough(2);
  int64_t offset = 0;
  for (int64_t k = 0; k <= 2; ++k) {
    const ReviewDataset part = model.Partition(k);
    for (int64_t i = 0; i < part.size(); ++i) {
      const data::Review& expected = part.review(i);
      const data::Review& got = cumulative.review(offset + i);
      ASSERT_EQ(expected.user, got.user);
      ASSERT_EQ(expected.text, got.text);
      ASSERT_EQ(expected.timestamp, got.timestamp);
    }
    offset += part.size();
  }
  ASSERT_EQ(offset, cumulative.size());
  EXPECT_TRUE(cumulative.indexed());
}

TEST(ArenaTest, TierScheduleMapsToPartitions) {
  const AdversaryModel model(TinyArenaConfig());
  EXPECT_EQ(model.TierOfPartition(0), AdversaryTier::kStatic);
  EXPECT_EQ(model.TierOfPartition(1), AdversaryTier::kParaphrase);
  EXPECT_EQ(model.TierOfPartition(2), AdversaryTier::kCamouflage);
  EXPECT_EQ(model.TierOnDay(249), AdversaryTier::kStatic);
  EXPECT_EQ(model.TierOnDay(250), AdversaryTier::kParaphrase);
  EXPECT_EQ(model.TierOnDay(729), AdversaryTier::kCamouflage);
}

// ---------------------------------------------------------------------------
// Tier evasion properties (asserted on eval slices: noise-free labels)

TEST(ArenaTest, StaticTierUsesSpamRegister) {
  const AdversaryModel model(TinyArenaConfig());
  const std::unordered_set<std::string> spammy = SpamRegister();
  const ReviewDataset eval = model.EvalSlice(0);
  int64_t fakes = 0, with_register = 0;
  for (const data::Review& review : eval.reviews()) {
    if (review.is_benign()) continue;
    ++fakes;
    for (const std::string& token : common::Split(review.text, ' ')) {
      if (spammy.count(token) > 0) {
        ++with_register;
        break;
      }
    }
  }
  ASSERT_GT(fakes, 0);
  EXPECT_GT(with_register, 0)
      << "tier-0 campaigns should carry the spam register";
}

TEST(ArenaTest, ParaphraseTierAvoidsSpamRegister) {
  const AdversaryModel model(TinyArenaConfig());
  const std::unordered_set<std::string> spammy = SpamRegister();
  const ReviewDataset eval = model.EvalSlice(1);
  int64_t fakes = 0;
  for (const data::Review& review : eval.reviews()) {
    if (review.is_benign()) continue;
    ++fakes;
    for (const std::string& token : common::Split(review.text, ' ')) {
      EXPECT_EQ(spammy.count(token), 0u)
          << "paraphrased spam leaked register word \"" << token << "\"";
    }
  }
  ASSERT_GT(fakes, 0);
}

TEST(ArenaTest, CamouflageTierHugsItemMeansAndUsesRings) {
  const AdversaryModel model(TinyArenaConfig());
  const ReviewDataset tier0 = model.EvalSlice(0);
  const ReviewDataset tier2 = model.EvalSlice(2);
  auto mean_deviation = [&](const ReviewDataset& ds) {
    double sum = 0.0;
    int64_t n = 0;
    for (const data::Review& review : ds.reviews()) {
      if (review.is_benign()) continue;
      sum += std::abs(static_cast<double>(review.rating) -
                      model.ItemBenignMean(review.item));
      ++n;
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  // Camouflaged ratings sit near the item's benign mean; static campaigns
  // use the extremes.
  EXPECT_LT(mean_deviation(tier2), mean_deviation(tier0));

  // Every camouflage-tier campaign author is a sockpuppet-ring fraudster.
  std::set<int64_t> ring_members;
  for (const std::vector<int64_t>& ring : model.rings()) {
    ring_members.insert(ring.begin(), ring.end());
  }
  int64_t fakes = 0;
  for (const data::Review& review : tier2.reviews()) {
    if (review.is_benign()) continue;
    ++fakes;
    EXPECT_TRUE(model.is_fraudster()[review.user]);
    EXPECT_EQ(ring_members.count(review.user), 1u);
  }
  ASSERT_GT(fakes, 0);
}

TEST(ArenaTest, CamouflageTierDripsAcrossTheWindow) {
  const AdversaryModel model(TinyArenaConfig());
  const ReviewDataset tier2 = model.Partition(2);
  int64_t lo = INT64_MAX, hi = INT64_MIN, fakes = 0;
  for (const data::Review& review : tier2.reviews()) {
    if (review.is_benign()) continue;
    ++fakes;
    lo = std::min(lo, review.timestamp);
    hi = std::max(hi, review.timestamp);
  }
  ASSERT_GT(fakes, 5);
  // The slow burn spreads campaign reviews across most of the partition
  // window (230 days here) instead of a burst.
  EXPECT_GT(hi - lo, 230 / 2);
}

// ---------------------------------------------------------------------------
// Detection-lag tracker

TEST(DetectionTest, ColdWaveRecoversAgainstAbsoluteTargets) {
  stream::DetectionLagTracker::Options options;
  options.cold_auc_target = 0.7;
  options.cold_brmse_target = 1.15;
  stream::DetectionLagTracker tracker(options);
  tracker.OnEpoch(0, 0, 0, 1.5, 0.55);
  tracker.OnEpoch(1, 0, 0, 1.2, 0.65);
  tracker.OnEpoch(2, 0, 0, 1.1, 0.75);  // Crosses both targets.
  ASSERT_EQ(tracker.waves().size(), 1u);
  const stream::WaveStat& wave = tracker.waves()[0];
  EXPECT_EQ(wave.lag_epochs, 3);
  EXPECT_EQ(wave.epochs_observed, 3);
  EXPECT_DOUBLE_EQ(wave.worst_auc, 0.55);
  EXPECT_DOUBLE_EQ(wave.worst_brmse, 1.5);
}

TEST(DetectionTest, TierChangeOpensWaveAgainstPreAttackBaseline) {
  stream::DetectionLagTracker::Options options;
  options.auc_slack = 0.98;
  options.brmse_slack = 1.05;
  stream::DetectionLagTracker tracker(options);
  tracker.OnEpoch(0, 0, 0, 1.0, 0.80);  // Cold wave, instantly recovered.
  tracker.OnEpoch(1, 0, 0, 0.9, 0.85);  // Pre-attack baseline.
  tracker.OnEpoch(2, 1, 1, 1.4, 0.50);  // Attack bites.
  tracker.OnEpoch(3, 1, 1, 1.1, 0.70);
  tracker.OnEpoch(4, 1, 1, 0.92, 0.84);  // Within slack of baseline.
  ASSERT_EQ(tracker.waves().size(), 2u);
  const stream::WaveStat& wave = tracker.waves()[1];
  EXPECT_EQ(wave.tier, 1);
  EXPECT_DOUBLE_EQ(wave.baseline_auc, 0.85);
  EXPECT_DOUBLE_EQ(wave.baseline_brmse, 0.9);
  EXPECT_NEAR(wave.target_auc, 0.98 * 0.85, 1e-12);
  EXPECT_NEAR(wave.target_brmse, 1.05 * 0.9, 1e-12);
  EXPECT_EQ(wave.start_epoch, 2);
  EXPECT_EQ(wave.lag_epochs, 3);  // Epochs 2, 3, 4.
  EXPECT_DOUBLE_EQ(wave.worst_auc, 0.50);
  EXPECT_DOUBLE_EQ(wave.worst_brmse, 1.4);
}

TEST(DetectionTest, UnrecoveredWaveReportsMinusOne) {
  stream::DetectionLagTracker tracker;
  tracker.OnEpoch(0, 0, 0, 1.0, 0.80);
  tracker.OnEpoch(1, 1, 1, 2.0, 0.40);
  tracker.OnEpoch(2, 1, 1, 1.9, 0.45);
  ASSERT_EQ(tracker.waves().size(), 2u);
  EXPECT_EQ(tracker.waves()[1].lag_epochs, -1);
  EXPECT_EQ(tracker.waves()[1].epochs_observed, 2);
}

// ---------------------------------------------------------------------------
// Publish layout

/// A generation dir holding a fake "checkpoint" (arbitrary bytes are fine:
/// the fingerprint is size+CRC of <prefix>.model, no parsing).
stream::Manifest WriteFakeGeneration(const std::string& root,
                                     int64_t generation) {
  const std::string dir = stream::GenerationDir(root, generation);
  EXPECT_TRUE(common::EnsureDir(dir).ok());
  stream::Manifest m;
  m.generation = generation;
  m.partition = generation;
  m.tier = 1;
  m.epochs_completed = generation + 1;
  m.checkpoint = "ckpt";
  m.files = {"ckpt.model", "ckpt.meta"};
  EXPECT_TRUE(common::AtomicWriteFile(
                  dir + "/ckpt.model",
                  "model-bytes-" + std::to_string(generation))
                  .ok());
  EXPECT_TRUE(common::AtomicWriteFile(dir + "/ckpt.meta", "meta").ok());
  auto fingerprint = core::CheckpointParamsFingerprint(dir + "/ckpt");
  EXPECT_TRUE(fingerprint.ok());
  m.params_fingerprint = fingerprint.value();
  return m;
}

TEST(PublishTest, ManifestRoundTrips) {
  const std::string root = TempRoot("manifest");
  const stream::Manifest written = WriteFakeGeneration(root, 0);
  const std::string dir = stream::GenerationDir(root, 0);
  ASSERT_TRUE(stream::WriteManifest(dir, written).ok());
  auto read = stream::ReadManifest(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().generation, 0);
  EXPECT_EQ(read.value().partition, 0);
  EXPECT_EQ(read.value().tier, 1);
  EXPECT_EQ(read.value().epochs_completed, 1);
  EXPECT_EQ(read.value().params_fingerprint, written.params_fingerprint);
  EXPECT_EQ(read.value().checkpoint, "ckpt");
  EXPECT_EQ(read.value().store, "");
  EXPECT_EQ(read.value().files, written.files);
}

TEST(PublishTest, ReadManifestRejectsMissingArtifact) {
  const std::string root = TempRoot("missing");
  stream::Manifest m = WriteFakeGeneration(root, 0);
  m.files.push_back("ckpt.tower_store");  // Never written.
  const std::string dir = stream::GenerationDir(root, 0);
  ASSERT_TRUE(stream::WriteManifest(dir, m).ok());
  EXPECT_FALSE(stream::ReadManifest(dir).ok());
}

TEST(PublishTest, ReadManifestRejectsFingerprintMismatch) {
  const std::string root = TempRoot("fingerprint");
  stream::Manifest m = WriteFakeGeneration(root, 0);
  m.params_fingerprint ^= 0xdeadbeef;
  const std::string dir = stream::GenerationDir(root, 0);
  ASSERT_TRUE(stream::WriteManifest(dir, m).ok());
  EXPECT_FALSE(stream::ReadManifest(dir).ok());
}

TEST(PublishTest, LatestGenerationSkipsTornGenerations) {
  const std::string root = TempRoot("latest");
  EXPECT_FALSE(stream::LatestGeneration(root).ok());  // No root yet.
  ASSERT_TRUE(common::EnsureDir(root).ok());
  EXPECT_FALSE(stream::LatestGeneration(root).ok());  // Empty root.

  const stream::Manifest g0 = WriteFakeGeneration(root, 0);
  ASSERT_TRUE(
      stream::WriteManifest(stream::GenerationDir(root, 0), g0).ok());
  // Generation 1: artifacts but no manifest (crash before the commit point).
  WriteFakeGeneration(root, 1);
  // Generation 2: a torn manifest.
  WriteFakeGeneration(root, 2);
  ASSERT_TRUE(common::AtomicWriteFile(
                  stream::GenerationDir(root, 2) + "/MANIFEST", "format=1\ngar")
                  .ok());
  auto latest = stream::LatestGeneration(root);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().first.generation, 0);
  EXPECT_EQ(latest.value().second, stream::GenerationDir(root, 0));
}

TEST(PublishTest, UpdateCurrentLinkSwapsAndSurvivesFaults) {
  const std::string root = TempRoot("link");
  ASSERT_TRUE(common::EnsureDir(root).ok());
  ASSERT_TRUE(stream::UpdateCurrentLink(root, 0).ok());
  char buf[256];
  ssize_t n = ::readlink((root + "/current").c_str(), buf, sizeof(buf) - 1);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, n), "gen-000000");

  ASSERT_TRUE(stream::UpdateCurrentLink(root, 1).ok());
  n = ::readlink((root + "/current").c_str(), buf, sizeof(buf) - 1);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, n), "gen-000001");

  // An injected rename fault must leave the previous link untouched.
  common::failpoint::Arm("publish.rename");
  EXPECT_FALSE(stream::UpdateCurrentLink(root, 2).ok());
  common::failpoint::DisarmAll();
  n = ::readlink((root + "/current").c_str(), buf, sizeof(buf) - 1);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, n), "gen-000001");
}

TEST(PublishTest, WriteManifestFaultLeavesNoManifest) {
  const std::string root = TempRoot("wmfault");
  const stream::Manifest m = WriteFakeGeneration(root, 0);
  const std::string dir = stream::GenerationDir(root, 0);
  common::failpoint::Arm("manifest.rename");
  EXPECT_FALSE(stream::WriteManifest(dir, m).ok());
  common::failpoint::DisarmAll();
  struct stat st;
  EXPECT_NE(::stat((dir + "/MANIFEST").c_str(), &st), 0)
      << "a failed manifest commit must not leave a MANIFEST";
  // And the commit succeeds once the fault clears.
  ASSERT_TRUE(stream::WriteManifest(dir, m).ok());
  EXPECT_TRUE(stream::ReadManifest(dir).ok());
}

// ---------------------------------------------------------------------------
// Streaming driver

stream::StreamOptions TinyStreamOptions(const std::string& root) {
  stream::StreamOptions options;
  options.config = TinyTrainerConfig();
  options.epochs_per_partition = 1;
  options.publish_root = root;
  options.build_store = false;
  return options;
}

TEST(DriverTest, KillThenResumeIsBitwiseIdentical) {
  const AdversaryModel arena(TinyArenaConfig());
  // Uninterrupted reference stream.
  const std::string root_a = TempRoot("stream_a");
  {
    stream::StreamDriver driver(&arena, TinyStreamOptions(root_a));
    ASSERT_TRUE(driver.Recover().ok());
    while (!driver.Done()) ASSERT_TRUE(driver.Step(nullptr).ok());
  }
  // Killed after partition 1 (driver destroyed mid-stream), finished by a
  // fresh driver that recovers from the manifest.
  const std::string root_b = TempRoot("stream_b");
  {
    stream::StreamDriver driver(&arena, TinyStreamOptions(root_b));
    ASSERT_TRUE(driver.Recover().ok());
    ASSERT_TRUE(driver.Step(nullptr).ok());
    ASSERT_TRUE(driver.Step(nullptr).ok());
  }
  {
    stream::StreamDriver driver(&arena, TinyStreamOptions(root_b));
    ASSERT_TRUE(driver.Recover().ok());
    EXPECT_EQ(driver.next_partition(), 2);
    while (!driver.Done()) ASSERT_TRUE(driver.Step(nullptr).ok());
  }
  const int64_t last = arena.num_partitions() - 1;
  auto manifest =
      stream::ReadManifest(stream::GenerationDir(root_a, last));
  ASSERT_TRUE(manifest.ok());
  for (const std::string& rel : manifest.value().files) {
    auto a = common::ReadFile(stream::GenerationDir(root_a, last) + "/" + rel);
    auto b = common::ReadFile(stream::GenerationDir(root_b, last) + "/" + rel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << rel << " diverged after kill+resume";
  }
}

TEST(DriverTest, RecoverRepairsTheCurrentSymlink) {
  const AdversaryModel arena(TinyArenaConfig());
  const std::string root = TempRoot("repair");
  {
    stream::StreamDriver driver(&arena, TinyStreamOptions(root));
    ASSERT_TRUE(driver.Recover().ok());
    ASSERT_TRUE(driver.Step(nullptr).ok());
  }
  ASSERT_EQ(::unlink((root + "/current").c_str()), 0);
  stream::StreamDriver driver(&arena, TinyStreamOptions(root));
  ASSERT_TRUE(driver.Recover().ok());
  char buf[256];
  const ssize_t n =
      ::readlink((root + "/current").c_str(), buf, sizeof(buf) - 1);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, n), "gen-000000");
  EXPECT_EQ(driver.next_partition(), 1);
}

TEST(DriverTest, HotReloadConvergesALiveServer) {
  const AdversaryModel arena(TinyArenaConfig());
  const std::string root = TempRoot("reload");
  stream::StreamOptions options = TinyStreamOptions(root);
  options.build_store = true;
  {
    stream::StreamDriver bootstrap(&arena, options);
    ASSERT_TRUE(bootstrap.Recover().ok());
    ASSERT_TRUE(bootstrap.Step(nullptr).ok());
  }
  serve::ServerOptions server_options;
  server_options.config = options.config;
  server_options.model_prefix = stream::CurrentPath(root, "ckpt");
  server_options.store_path = stream::CurrentPath(root, "ckpt.tower_store");
  server_options.port = 0;
  auto server = serve::Server::Start(server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  options.reload_endpoints = {{"127.0.0.1", server.value()->port()}};
  stream::StreamDriver driver(&arena, options);
  ASSERT_TRUE(driver.Recover().ok());
  EXPECT_EQ(driver.next_partition(), 1);
  int64_t rolls = 0;
  while (!driver.Done()) {
    stream::GenerationResult result;
    ASSERT_TRUE(driver.Step(&result).ok());
    EXPECT_TRUE(result.reloaded);
    ++rolls;
  }
  EXPECT_EQ(rolls, 2);
  const serve::ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.batcher.reloads, 2);
  server.value()->Shutdown();
}

TEST(DriverTest, RouterMetricsExposeQuarantineGauge) {
  const AdversaryModel arena(TinyArenaConfig());
  const std::string root = TempRoot("metrics");
  stream::StreamOptions options = TinyStreamOptions(root);
  options.build_store = true;
  {
    stream::StreamDriver bootstrap(&arena, options);
    ASSERT_TRUE(bootstrap.Recover().ok());
    ASSERT_TRUE(bootstrap.Step(nullptr).ok());
  }
  serve::ServerOptions server_options;
  server_options.config = options.config;
  server_options.model_prefix = stream::CurrentPath(root, "ckpt");
  server_options.store_path = stream::CurrentPath(root, "ckpt.tower_store");
  server_options.port = 0;
  auto server = serve::Server::Start(server_options);
  ASSERT_TRUE(server.ok());
  serve::RouterOptions router_options;
  router_options.backends = {{"127.0.0.1", server.value()->port()}};
  auto router = serve::Router::Start(router_options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // The rrre_loadgen --metrics scrape path: METRICS over the line protocol.
  auto socket = common::Socket::Connect("127.0.0.1", router.value()->port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket.value().SendAll("METRICS\n").ok());
  common::LineReader reader(&socket.value());
  auto header = reader.ReadLine();
  ASSERT_TRUE(header.ok() && header.value().has_value());
  ASSERT_TRUE(common::StartsWith(*header.value(), "#metrics\tlines="));
  const long long lines = std::atoll(header.value()->c_str() +
                                     sizeof("#metrics\tlines=") - 1);
  bool saw_quarantined_gauge = false;
  for (long long i = 0; i < lines; ++i) {
    auto line = reader.ReadLine();
    ASSERT_TRUE(line.ok() && line.value().has_value());
    if (common::StartsWith(*line.value(), "rrre_router_quarantined")) {
      saw_quarantined_gauge = true;
      EXPECT_TRUE(common::EndsWith(*line.value(), " 0"))
          << "healthy fleet must scrape quarantined=0: " << *line.value();
    }
  }
  EXPECT_TRUE(saw_quarantined_gauge)
      << "rrre_router_quarantined missing from the METRICS exposition";
  router.value()->Shutdown();
  server.value()->Shutdown();
}

// ---------------------------------------------------------------------------
// Fault-injection soak (run in the check.sh failpoint leg)

TEST(StreamFaultsTest, DaemonLoopSurvivesInjectedPublishAndReloadFaults) {
  AdversaryConfig arena_config = TinyArenaConfig();
  arena_config.days_per_partition = 365;  // 2 partitions.
  arena_config.schedule = {{0, AdversaryTier::kStatic},
                           {365, AdversaryTier::kParaphrase}};
  const AdversaryModel arena(arena_config);
  const std::string root = TempRoot("faults");
  stream::StreamOptions options = TinyStreamOptions(root);
  options.build_store = true;

  // Generation 0 publishes cleanly; the fleet starts on it.
  {
    stream::StreamDriver bootstrap(&arena, options);
    ASSERT_TRUE(bootstrap.Recover().ok());
    ASSERT_TRUE(bootstrap.Step(nullptr).ok());
  }
  serve::ServerOptions server_options;
  server_options.config = options.config;
  server_options.model_prefix = stream::CurrentPath(root, "ckpt");
  server_options.store_path = stream::CurrentPath(root, "ckpt.tower_store");
  server_options.port = 0;
  auto server = serve::Server::Start(server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint64_t gen0_fingerprint = ScrapeFingerprint(server.value()->port());

  // Seeded fault schedule across the publish and reload seams: the manifest
  // commit, the tower-store write and the server's reload path all fail
  // probabilistically, replayably (spec + seed).
  ASSERT_TRUE(common::failpoint::ArmFromSpec(
                  "manifest.rename:error,prob=0.7,seed=7;"
                  "store.write:error,prob=0.5,seed=11;"
                  "serve.reload:error,prob=0.7,seed=13")
                  .ok());

  options.reload_endpoints = {{"127.0.0.1", server.value()->port()}};
  stream::StreamDriver driver(&arena, options);
  ASSERT_TRUE(driver.Recover().ok());
  EXPECT_EQ(driver.next_partition(), 1);
  int64_t attempts = 0, failures = 0;
  while (!driver.Done()) {
    ++attempts;
    ASSERT_LT(attempts, 200) << "daemon loop did not converge under faults";
    const common::Status status = driver.Step(nullptr);
    if (status.ok()) continue;
    ++failures;
    // The old snapshot must keep serving while the publish/reload retries:
    // a scoring request through the live server still answers.
    auto probe = common::Socket::Connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(probe.value().SendAll("0\t0\n").ok());
    common::LineReader reader(&probe.value());
    auto line = reader.ReadLine();
    ASSERT_TRUE(line.ok() && line.value().has_value());
    EXPECT_FALSE(common::StartsWith(*line.value(), "!ERR"))
        << "old snapshot stopped serving during faulted publish: "
        << *line.value();
  }
  common::failpoint::DisarmAll();
  EXPECT_GT(failures, 0) << "the fault schedule never fired — soak is vacuous";

  // The stream finished: the server must now serve the *new* generation.
  const uint64_t served = ScrapeFingerprint(server.value()->port());
  auto published = core::CheckpointParamsFingerprint(
      stream::GenerationDir(root, 1) + "/ckpt");
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(served, published.value());
  EXPECT_NE(served, gen0_fingerprint);
  server.value()->Shutdown();
}

}  // namespace
}  // namespace rrre
