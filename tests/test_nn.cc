#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/fm.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace rrre::nn {
namespace {

using common::Rng;
using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Module registry
// ---------------------------------------------------------------------------

class ToyModel : public Module {
 public:
  explicit ToyModel(Rng& rng) : inner_(2, 3, rng) {
    RegisterModule("inner", &inner_);
    scale_ = RegisterParameter("scale", Tensor::Scalar(1.0f, true));
  }
  Linear inner_;
  Tensor scale_;
};

TEST(ModuleTest, NamedParametersIncludeChildren) {
  Rng rng(1);
  ToyModel m(rng);
  auto named = m.NamedParameters();
  EXPECT_TRUE(named.count("scale"));
  EXPECT_TRUE(named.count("inner.weight"));
  EXPECT_TRUE(named.count("inner.bias"));
  EXPECT_EQ(named.size(), 3u);
}

TEST(ModuleTest, NumParametersCountsScalars) {
  Rng rng(1);
  ToyModel m(rng);
  EXPECT_EQ(m.NumParameters(), 2 * 3 + 3 + 1);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(2);
  ToyModel a(rng);
  ToyModel b(rng);  // Different init.
  const std::string path = ::testing::TempDir() + "/toy_model.bin";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  for (const auto& [name, t] : pa) {
    EXPECT_EQ(pb.at(name).ToVector(), t.ToVector()) << name;
  }
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsMissingParameter) {
  Rng rng(3);
  ToyModel a(rng);
  Linear lone(2, 3, rng);
  const std::string path = ::testing::TempDir() + "/lone.bin";
  ASSERT_TRUE(lone.Save(path).ok());
  EXPECT_FALSE(a.Load(path).ok());
  std::remove(path.c_str());
}

TEST(ModuleTest, ZeroGradClearsGradients) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  Tensor x = Tensor::Randn({4, 3}, rng);
  tensor::Sum(tensor::Square(lin.Forward(x))).Backward();
  bool any_nonzero = false;
  for (const Tensor& p : lin.Parameters()) {
    for (float g : p.grad()) any_nonzero |= (g != 0.0f);
  }
  EXPECT_TRUE(any_nonzero);
  lin.ZeroGrad();
  for (const Tensor& p : lin.Parameters()) {
    for (float g : p.grad()) EXPECT_EQ(g, 0.0f);
  }
}

// ---------------------------------------------------------------------------
// Linear / Embedding
// ---------------------------------------------------------------------------

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(5);
  Linear lin(4, 2, rng);
  Tensor x = Tensor::Zeros({3, 4});
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  // Zero input -> bias only, and bias is initialized to zero.
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.at(i), 0.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(6);
  Linear lin(3, 3, rng, /*use_bias=*/false);
  EXPECT_EQ(lin.NamedParameters().size(), 1u);
}

TEST(EmbeddingTest, LookupReturnsRows) {
  Rng rng(7);
  Embedding emb(10, 4, rng);
  Tensor e = emb.Forward({3, 3, 9});
  EXPECT_EQ(e.shape(), (Shape{3, 4}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(e.at(0, j), e.at(1, j));
    EXPECT_EQ(e.at(0, j), emb.table().at(3, j));
  }
}

TEST(EmbeddingTest, SetWeightsOverridesTable) {
  Rng rng(8);
  Embedding emb(2, 2, rng);
  emb.SetWeights(Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  Tensor e = emb.Forward({1});
  EXPECT_EQ(e.ToVector(), (std::vector<float>{3, 4}));
}

TEST(EmbeddingTest, GradientFlowsToTable) {
  Rng rng(9);
  Embedding emb(5, 3, rng);
  tensor::Sum(tensor::Square(emb.Forward({2}))).Backward();
  const auto& g = emb.table().grad();
  // Only row 2 receives gradient.
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      if (r == 2) {
        EXPECT_NE(g[static_cast<size_t>(r * 3 + c)], 0.0f);
      } else {
        EXPECT_EQ(g[static_cast<size_t>(r * 3 + c)], 0.0f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Recurrent cells
// ---------------------------------------------------------------------------

TEST(LstmTest, StepShapesAndStateEvolution) {
  Rng rng(10);
  LstmCell cell(3, 5, rng);
  auto st = cell.InitialState(2);
  EXPECT_EQ(st.h.shape(), (Shape{2, 5}));
  Tensor x = Tensor::Randn({2, 3}, rng);
  auto st2 = cell.Step(x, st);
  EXPECT_EQ(st2.h.shape(), (Shape{2, 5}));
  EXPECT_EQ(st2.c.shape(), (Shape{2, 5}));
  bool changed = false;
  for (int64_t i = 0; i < st2.h.numel(); ++i) {
    if (st2.h.at(i) != 0.0f) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(LstmTest, HiddenStateStaysBounded) {
  Rng rng(11);
  LstmCell cell(2, 4, rng);
  auto st = cell.InitialState(1);
  for (int t = 0; t < 50; ++t) {
    Tensor x = Tensor::Randn({1, 2}, rng, 3.0f);
    st = cell.Step(x, st);
  }
  // tanh output gate bounds |h| by 1.
  for (int64_t i = 0; i < st.h.numel(); ++i) {
    EXPECT_LE(std::abs(st.h.at(i)), 1.0f);
  }
}

TEST(BiLstmTest, EncodeShapeAndDirectionality) {
  Rng rng(12);
  BiLstmEncoder enc(3, 4, rng);
  EXPECT_EQ(enc.output_size(), 8);
  std::vector<Tensor> seq;
  for (int t = 0; t < 5; ++t) seq.push_back(Tensor::Randn({2, 3}, rng));
  Tensor out = enc.Encode(seq);
  EXPECT_EQ(out.shape(), (Shape{2, 8}));

  // Reversing the sequence must change the encoding (direction sensitivity).
  std::vector<Tensor> rev(seq.rbegin(), seq.rend());
  Tensor out_rev = enc.Encode(rev);
  bool differs = false;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (std::abs(out.at(i) - out_rev.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(BiLstmTest, GradientsReachAllParameters) {
  Rng rng(13);
  BiLstmEncoder enc(2, 3, rng);
  std::vector<Tensor> seq = {Tensor::Randn({1, 2}, rng),
                             Tensor::Randn({1, 2}, rng)};
  tensor::Sum(tensor::Square(enc.Encode(seq))).Backward();
  for (const auto& [name, p] : enc.NamedParameters()) {
    double norm = 0.0;
    for (float g : p.grad()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0) << name;
  }
}

TEST(GruTest, StepAndEncodeShapes) {
  Rng rng(14);
  GruCell cell(3, 4, rng);
  Tensor h = cell.InitialState(2);
  EXPECT_EQ(h.shape(), (Shape{2, 4}));
  std::vector<Tensor> seq = {Tensor::Randn({2, 3}, rng),
                             Tensor::Randn({2, 3}, rng),
                             Tensor::Randn({2, 3}, rng)};
  Tensor out = cell.Encode(seq);
  EXPECT_EQ(out.shape(), (Shape{2, 4}));
}

TEST(GruTest, ZeroUpdateGateKeepsState) {
  // With all-zero parameters, z = sigmoid(0) = 0.5 and n = 0, so each step
  // halves the state; verify the recurrence matches that closed form.
  Rng rng(15);
  GruCell cell(1, 1, rng);
  for (Tensor& p : cell.Parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) p.at(i) = 0.0f;
  }
  Tensor h = Tensor::FromVector({1, 1}, {1.0f});
  Tensor x = Tensor::Zeros({1, 1});
  Tensor h1 = cell.Step(x, h);
  EXPECT_NEAR(h1.at(0), 0.5f, 1e-6f);
  Tensor h2 = cell.Step(x, h1);
  EXPECT_NEAR(h2.at(0), 0.25f, 1e-6f);
}

// ---------------------------------------------------------------------------
// FraudAttention
// ---------------------------------------------------------------------------

TEST(AttentionTest, WeightsArePerGroupDistributions) {
  Rng rng(16);
  const int64_t b = 3, s = 4, k = 6, du = 2, di = 2;
  FraudAttention att(k, du, di, 5, rng);
  Tensor rev = Tensor::Randn({b * s, k}, rng);
  Tensor eu = Tensor::Randn({b * s, du}, rng);
  Tensor ei = Tensor::Randn({b * s, di}, rng);
  Tensor alphas = att.Forward(rev, eu, ei, s);
  EXPECT_EQ(alphas.shape(), (Shape{b, s}));
  for (int64_t r = 0; r < b; ++r) {
    float sum = 0.0f;
    for (int64_t j = 0; j < s; ++j) {
      EXPECT_GT(alphas.at(r, j), 0.0f);
      sum += alphas.at(r, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(AttentionTest, ScoresDependOnIdEmbeddings) {
  Rng rng(17);
  const int64_t s = 2, k = 4;
  FraudAttention att(k, 3, 3, 5, rng);
  Tensor rev = Tensor::Randn({s, k}, rng);
  Tensor eu = Tensor::Randn({s, 3}, rng);
  Tensor ei1 = Tensor::Randn({s, 3}, rng);
  Tensor ei2 = Tensor::Randn({s, 3}, rng);
  Tensor a1 = att.Forward(rev, eu, ei1, s);
  Tensor a2 = att.Forward(rev, eu, ei2, s);
  bool differs = false;
  for (int64_t i = 0; i < a1.numel(); ++i) {
    if (std::abs(a1.at(i) - a2.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(AttentionTest, GradFlowsToAllParams) {
  Rng rng(18);
  const int64_t b = 2, s = 3, k = 4;
  FraudAttention att(k, 2, 2, 4, rng);
  Tensor rev = Tensor::Randn({b * s, k}, rng);
  Tensor eu = Tensor::Randn({b * s, 2}, rng);
  Tensor ei = Tensor::Randn({b * s, 2}, rng);
  Tensor mix = Tensor::Randn({b, s}, rng);
  tensor::Sum(tensor::Mul(att.Forward(rev, eu, ei, s), mix)).Backward();
  for (const auto& [name, p] : att.NamedParameters()) {
    double norm = 0.0;
    for (float g : p.grad()) norm += std::abs(g);
    if (name == "b2") {
      // b2 shifts every score in a group equally and softmax is
      // shift-invariant, so its gradient is zero up to float rounding (the
      // per-row cancellation sum_j y_j (g_j - dot) need not hit 0.0f
      // exactly). It is kept only for fidelity to Eq. (5) of the paper.
      EXPECT_LE(norm, 1e-5);
    } else {
      EXPECT_GT(norm, 0.0) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// FactorizationMachine
// ---------------------------------------------------------------------------

/// Brute-force FM reference: w0 + sum w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j.
float FmReference(const Tensor& x, int64_t row, const Tensor& w0,
                  const Tensor& w, const Tensor& v) {
  const int64_t n = x.dim(1);
  const int64_t f = v.dim(1);
  float out = w0.at(0);
  for (int64_t i = 0; i < n; ++i) out += w.at(i, 0) * x.at(row, i);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      float dot = 0.0f;
      for (int64_t c = 0; c < f; ++c) dot += v.at(i, c) * v.at(j, c);
      out += dot * x.at(row, i) * x.at(row, j);
    }
  }
  return out;
}

TEST(FmTest, MatchesBruteForcePairwiseForm) {
  Rng rng(19);
  const int64_t n = 5, f = 3;
  FactorizationMachine fm(n, f, rng);
  auto named = fm.NamedParameters();
  Tensor x = Tensor::Randn({4, n}, rng);
  Tensor y = fm.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 1}));
  for (int64_t r = 0; r < 4; ++r) {
    const float expected =
        FmReference(x, r, named.at("w0"), named.at("w"), named.at("v"));
    EXPECT_NEAR(y.at(r, 0), expected, 1e-4f) << "row " << r;
  }
}

TEST(FmTest, GradFlowsToAllParams) {
  Rng rng(20);
  FactorizationMachine fm(4, 2, rng);
  Tensor x = Tensor::Randn({3, 4}, rng);
  tensor::Sum(tensor::Square(fm.Forward(x))).Backward();
  for (const auto& [name, p] : fm.NamedParameters()) {
    double norm = 0.0;
    for (float g : p.grad()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0) << name;
  }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

TEST(DropoutTest, InferencePassesThrough) {
  Rng rng(21);
  Tensor x = Tensor::Randn({10, 10}, rng);
  Tensor y = Dropout(x, 0.5, rng, /*training=*/false);
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

TEST(DropoutTest, TrainingZeroesAboutPFraction) {
  Rng rng(22);
  Tensor x = Tensor::Full({100, 100}, 1.0f);
  Tensor y = Dropout(x, 0.3, rng, /*training=*/true);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.at(i), 1.0f / 0.7f, 1e-5f);
    }
    sum += y.at(i);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.05);
}

TEST(DropoutTest, ZeroRateIsIdentity) {
  Rng rng(23);
  Tensor x = Tensor::Randn({5, 5}, rng);
  Tensor y = Dropout(x, 0.0, rng, /*training=*/true);
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(LossTest, MseHandComputed) {
  Tensor pred = Tensor::FromVector({2, 1}, {3.0f, 1.0f});
  Tensor loss = MseLoss(pred, {1.0f, 1.0f});
  EXPECT_NEAR(loss.item(), (4.0f + 0.0f) / 2.0f, 1e-6f);
}

TEST(LossTest, WeightedMseBatchNormMatchesEq14) {
  Tensor pred = Tensor::FromVector({3, 1}, {2.0f, 2.0f, 5.0f});
  // Fake review (weight 0) contributes nothing even with a large error.
  Tensor loss = WeightedMseLoss(pred, {1.0f, 1.0f, 1.0f}, {1.0f, 0.0f, 1.0f});
  EXPECT_NEAR(loss.item(), (1.0f + 0.0f + 16.0f) / 3.0f, 1e-5f);
}

TEST(LossTest, WeightedMseWeightSumNorm) {
  Tensor pred = Tensor::FromVector({3, 1}, {2.0f, 2.0f, 5.0f});
  Tensor loss = WeightedMseLoss(pred, {1.0f, 1.0f, 1.0f}, {1.0f, 0.0f, 1.0f},
                                WeightedMseNorm::kWeightSum);
  EXPECT_NEAR(loss.item(), (1.0f + 16.0f) / 2.0f, 1e-5f);
}

TEST(LossTest, L2PenaltySumsSquares) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f}, true);
  Tensor b = Tensor::FromVector({1}, {3.0f}, true);
  EXPECT_NEAR(L2Penalty({a, b}).item(), 1 + 4 + 9, 1e-6f);
}

TEST(LossTest, WeightedMseGradientZeroForZeroWeight) {
  Tensor pred = Tensor::FromVector({2, 1}, {5.0f, 5.0f}, true);
  WeightedMseLoss(pred, {0.0f, 0.0f}, {0.0f, 1.0f}).Backward();
  EXPECT_EQ(pred.grad()[0], 0.0f);
  EXPECT_NE(pred.grad()[1], 0.0f);
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({2}, {5.0f, -3.0f}, true);
  Sgd opt({x}, /*lr=*/0.1);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = tensor::Sum(tensor::Square(x));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-3f);
  EXPECT_NEAR(x.at(1), 0.0f, 1e-3f);
}

TEST(OptimizerTest, SgdMomentumConvergesFasterOnIllConditioned) {
  // f(x) = 50 x0^2 + 0.5 x1^2.
  auto run = [](double momentum) {
    Tensor x = Tensor::FromVector({2}, {1.0f, 1.0f}, true);
    Sgd opt({x}, /*lr=*/0.009, momentum);
    for (int i = 0; i < 120; ++i) {
      Tensor loss =
          tensor::Sum(tensor::Mul(Tensor::FromVector({2}, {50.0f, 0.5f}),
                                  tensor::Square(x)));
      loss.Backward();
      opt.Step();
    }
    return std::abs(x.at(1));
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(OptimizerTest, AdamConvergesOnLinearRegression) {
  Rng rng(24);
  // y = 2 x - 1 with noise-free targets; fit w, b.
  Tensor w = Tensor::Scalar(0.0f, true);
  Tensor b = Tensor::Scalar(0.0f, true);
  Adam opt({w, b}, /*lr=*/0.05);
  Tensor xs = Tensor::FromVector({8, 1}, {-2, -1, 0, 1, 2, 3, 4, 5});
  std::vector<float> targets;
  for (int64_t i = 0; i < 8; ++i) targets.push_back(2.0f * xs.at(i) - 1.0f);
  for (int step = 0; step < 400; ++step) {
    Tensor wide = tensor::MatMul(xs, tensor::Reshape(w, {1, 1}));
    Tensor pred = tensor::AddBias(wide, b);
    Tensor loss = MseLoss(pred, targets);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.item(), 2.0f, 0.05f);
  EXPECT_NEAR(b.item(), -1.0f, 0.05f);
}

TEST(OptimizerTest, WeightDecayShrinksUnusedDirection) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Sgd opt({x}, /*lr=*/0.1, /*momentum=*/0.0, /*weight_decay=*/0.5);
  // Loss gradient is zero; only decay acts.
  Tensor zero = Tensor::Scalar(0.0f);
  for (int i = 0; i < 10; ++i) {
    Tensor loss = tensor::Mul(tensor::Reshape(x, {1}), zero);
    tensor::Sum(loss).Backward();
    opt.Step();
  }
  EXPECT_LT(x.at(0), 0.6f);
  EXPECT_GT(x.at(0), 0.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Tensor x = Tensor::FromVector({2}, {30.0f, 40.0f}, true);
  tensor::Sum(tensor::Mul(x, Tensor::FromVector({2}, {3.0f, 4.0f})))
      .Backward();
  std::vector<Tensor> params = {x};
  const double pre = ClipGradNorm(params, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(GlobalGradNorm(params), 1.0, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoOpBelowThreshold) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  tensor::Sum(tensor::MulScalar(tensor::Reshape(x, {1}), 0.5f)).Backward();
  std::vector<Tensor> params = {x};
  ClipGradNorm(params, 10.0);
  EXPECT_NEAR(x.grad()[0], 0.5f, 1e-6f);
}

TEST(OptimizerTest, UntouchedParameterIsSkipped) {
  Rng rng(25);
  Tensor used = Tensor::FromVector({1}, {2.0f}, true);
  Tensor unused = Tensor::FromVector({1}, {7.0f}, true);
  Adam opt({used, unused}, 0.1);
  tensor::Sum(tensor::Square(tensor::Reshape(used, {1, 1}))).Backward();
  opt.Step();
  EXPECT_EQ(unused.at(0), 7.0f);
  EXPECT_NE(used.at(0), 2.0f);
}

// ---------------------------------------------------------------------------
// End-to-end: a small classifier learns a nonlinear decision rule
// ---------------------------------------------------------------------------

TEST(EndToEndTest, TwoLayerNetLearnsXor) {
  Rng rng(26);
  Linear l1(2, 8, rng);
  Linear l2(8, 2, rng);
  std::vector<Tensor> params = l1.Parameters();
  for (Tensor& p : l2.Parameters()) params.push_back(p);
  Adam opt(params, 0.05);

  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int64_t> labels = {0, 1, 1, 0};
  float final_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    Tensor logits = l2.Forward(tensor::Tanh(l1.Forward(x)));
    Tensor loss = tensor::CrossEntropyWithLogits(logits, labels);
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.05f);
  // Predictions match labels.
  Tensor logits = l2.Forward(tensor::Tanh(l1.Forward(x)));
  for (int64_t r = 0; r < 4; ++r) {
    const int64_t pred = logits.at(r, 0) > logits.at(r, 1) ? 0 : 1;
    EXPECT_EQ(pred, labels[static_cast<size_t>(r)]) << "example " << r;
  }
}

}  // namespace
}  // namespace rrre::nn
