#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rrre::common {
namespace {

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ConstructsAndJoinsAcrossSizes) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }  // destructor joins workers
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, TeardownWithNoWorkIsClean) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);
  }
}

// ---------------------------------------------------------------------------
// Coverage: every index exactly once
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    for (int64_t n : {0, 1, 7, 64, 1000}) {
      for (int64_t grain : {1, 3, 64, 1000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
          ASSERT_LE(0, lo);
          ASSERT_LE(lo, hi);
          ASSERT_LE(hi, n);
          ASSERT_LE(hi - lo, grain);
          for (int64_t i = lo; i < hi; ++i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 20, 3, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ChunkPartitionIsIndependentOfThreadCount) {
  // Record the chunk boundaries seen under each pool size; the partition
  // must be identical (only the execution interleaving may differ).
  auto partition_of = [](int threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(0, 103, 10, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = partition_of(1);
  EXPECT_EQ(partition_of(2), serial);
  EXPECT_EQ(partition_of(4), serial);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<int64_t, int64_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<int64_t, int64_t>{100, 103}));
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, EmptyRangeDoesNotInvoke) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 5, 1000, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 5);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SerialPoolRunsChunksInOrder) {
  ThreadPool pool(1);
  std::vector<int64_t> starts;
  pool.ParallelFor(0, 10, 3, [&](int64_t lo, int64_t) {
    starts.push_back(lo);
  });
  EXPECT_EQ(starts, (std::vector<int64_t>{0, 3, 6, 9}));
}

// ---------------------------------------------------------------------------
// Nesting
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCovers) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 50;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kOuter, 1, [&](int64_t olo, int64_t ohi) {
    for (int64_t o = olo; o < ohi; ++o) {
      EXPECT_TRUE(ThreadPool::InWorker());
      // The nested call must not deadlock and must cover its own range.
      pool.ParallelFor(0, kInner, 7, [&, o](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          hits[static_cast<size_t>(o * kInner + i)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, InWorkerIsFalseOutsideTasks) {
  EXPECT_FALSE(ThreadPool::InWorker());
  ThreadPool pool(2);
  pool.ParallelFor(0, 1, 1, [](int64_t, int64_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
  });
  EXPECT_FALSE(ThreadPool::InWorker());
}

// ---------------------------------------------------------------------------
// Exceptions
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(0, 100, 1,
                         [](int64_t lo, int64_t) {
                           if (lo == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must remain usable after an exception.
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 10, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPoolTest, NestedExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [&](int64_t, int64_t) {
                                  pool.ParallelFor(
                                      0, 4, 1, [](int64_t lo, int64_t) {
                                        if (lo == 2) {
                                          throw std::runtime_error("inner");
                                        }
                                      });
                                }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, GlobalPoolResizes) {
  const int original = ThreadPool::GlobalSize();
  ThreadPool::SetGlobalSize(3);
  EXPECT_EQ(ThreadPool::GlobalSize(), 3);
  EXPECT_EQ(ThreadPool::Global().size(), 3);
  std::atomic<int64_t> count{0};
  ParallelFor(0, 100, 10,
              [&](int64_t lo, int64_t hi) { count.fetch_add(hi - lo); });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalSize(original);
}

// ---------------------------------------------------------------------------
// Stress: repeated dispatch from a loop, mixed sizes, runs fine under
// `ctest -j` alongside the other binaries.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, StressRepeatedDispatch) {
  ThreadPool pool(4);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t n = 1 + (iter * 37) % 257;
    const int64_t grain = 1 + iter % 13;
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  }
}

}  // namespace
}  // namespace rrre::common
