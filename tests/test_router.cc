// Fault-injection and correctness tests of the rrre_routed sharding proxy:
// consistent-ring determinism, routed-vs-direct byte identity (pairs,
// catalogs, protocol errors), replica failover with a shard killed
// mid-stream, injected transport faults on every router.backend.* seam,
// rolling-reload barrier invariants, fingerprint quarantine, and METRICS
// aggregation. This suite runs under ASan and in the failpoint leg of
// tools/check.sh.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/socket.h"
#include "core/scorer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"

namespace rrre::serve {
namespace {

using common::Rng;
using common::Socket;

core::RrreConfig TinyConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

/// Minimal blocking line-protocol client (same shape as test_served's).
class Client {
 public:
  explicit Client(uint16_t port) {
    auto socket = Socket::Connect("127.0.0.1", port);
    RRRE_CHECK_OK(socket.status());
    socket_ = std::move(socket).ValueOrDie();
    reader_ = std::make_unique<common::LineReader>(&socket_);
  }

  void Send(const std::string& data) { RRRE_CHECK_OK(socket_.SendAll(data)); }

  std::optional<std::string> ReadLine() {
    auto line = reader_->ReadLine();
    RRRE_CHECK_OK(line.status());
    return std::move(line).ValueOrDie();
  }

  std::string MustReadLine() {
    auto line = ReadLine();
    RRRE_CHECK(line.has_value()) << "unexpected EOF from router";
    return *line;
  }

 private:
  Socket socket_;
  std::unique_ptr<common::LineReader> reader_;
};

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 20000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// ConsistentRing unit tests (no servers involved)
// ---------------------------------------------------------------------------

TEST(ConsistentRingTest, PreferenceOrderIsACompletePermutationAndStable) {
  const ConsistentRing ring(5, 64);
  const ConsistentRing twin(5, 64);
  for (int64_t user = 0; user < 200; ++user) {
    const std::vector<int> order = ring.PreferenceOrder(user);
    ASSERT_EQ(order.size(), 5u) << "user " << user;
    EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 5u)
        << "user " << user;
    // Deterministic: same ring parameters, same order — across instances,
    // which is what lets a restarted router route identically.
    EXPECT_EQ(order, twin.PreferenceOrder(user)) << "user " << user;
    EXPECT_EQ(ring.Owner(user), order[0]);
  }
}

TEST(ConsistentRingTest, EveryBackendOwnsASliceOfTheKeySpace) {
  const ConsistentRing ring(4, 64);
  std::vector<int64_t> owned(4, 0);
  constexpr int64_t kUsers = 2000;
  for (int64_t user = 0; user < kUsers; ++user) {
    ++owned[static_cast<size_t>(ring.Owner(user))];
  }
  for (int b = 0; b < 4; ++b) {
    // With 64 vnodes the split is coarse but nobody should starve or hog.
    EXPECT_GT(owned[static_cast<size_t>(b)], kUsers / 20) << "backend " << b;
    EXPECT_LT(owned[static_cast<size_t>(b)], kUsers / 2) << "backend " << b;
  }
}

TEST(ConsistentRingTest, GrowingTheFleetOnlyMovesKeysToTheNewBackend) {
  // Ring points depend only on (backend, vnode), so going 4 -> 5 backends
  // inserts backend 4's points and steals only their arcs: every key either
  // keeps its old home or moves to the new backend, roughly 1/5 of them.
  const ConsistentRing before(4, 64);
  const ConsistentRing after(5, 64);
  constexpr int64_t kUsers = 2000;
  int64_t moved = 0;
  for (int64_t user = 0; user < kUsers; ++user) {
    const int old_home = before.Owner(user);
    const int new_home = after.Owner(user);
    if (new_home != old_home) {
      EXPECT_EQ(new_home, 4) << "user " << user
                             << " moved between pre-existing backends";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kUsers / 2);  // Nothing close to a full reshuffle.
}

// ---------------------------------------------------------------------------
// Routed serving fixture: a small trained fleet plus byte-exact references
// ---------------------------------------------------------------------------

class RouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng_a(27);
    corpus_ = new data::ReviewDataset(
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng_a));
    core::RrreTrainer trainer_a(TinyConfig());
    trainer_a.Fit(*corpus_);
    // ctest runs every test as its own process, concurrently: the fixture
    // paths must be per-process or parallel tests race on the checkpoint
    // (one process's TearDownTestSuite deletes the files another is loading).
    prefix_a_ = new std::string(::testing::TempDir() + "/router_ckpt_a_" +
                                std::to_string(::getpid()));
    ASSERT_TRUE(trainer_a.Save(*prefix_a_).ok());

    Rng rng_b(99);
    data::ReviewDataset corpus_b =
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng_b);
    trainer_b_ = new core::RrreTrainer(TinyConfig());
    trainer_b_->Fit(corpus_b);

    ref_trainer_a_ = new core::RrreTrainer(TinyConfig());
    ASSERT_TRUE(ref_trainer_a_->Load(*prefix_a_).ok());
    ref_scorer_a_ = new core::BatchScorer(ref_trainer_a_);
  }

  static void TearDownTestSuite() {
    for (const char* suffix :
         {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
      std::remove((*prefix_a_ + suffix).c_str());
    }
    delete ref_scorer_a_;
    delete ref_trainer_a_;
    delete trainer_b_;
    delete corpus_;
    delete prefix_a_;
    ref_scorer_a_ = nullptr;
    ref_trainer_a_ = nullptr;
    trainer_b_ = nullptr;
    corpus_ = nullptr;
    prefix_a_ = nullptr;
  }

  void TearDown() override { common::failpoint::DisarmAll(); }

  static std::unique_ptr<Server> StartBackend(const std::string& prefix) {
    ServerOptions options;
    options.config = TinyConfig();
    options.model_prefix = prefix;
    options.port = 0;
    auto server = Server::Start(options);
    RRRE_CHECK_OK(server.status());
    return std::move(server).ValueOrDie();
  }

  static std::vector<std::unique_ptr<Server>> StartFleet(int n) {
    std::vector<std::unique_ptr<Server>> fleet;
    for (int i = 0; i < n; ++i) fleet.push_back(StartBackend(*prefix_a_));
    return fleet;
  }

  static RouterOptions RoutedOptions(
      const std::vector<std::unique_ptr<Server>>& fleet) {
    RouterOptions options;
    for (const auto& server : fleet) {
      options.backends.push_back({"127.0.0.1", server->port()});
    }
    options.port = 0;
    options.health_period_ms = 50;
    options.backoff_base_us = 100;  // Keep failover tests fast.
    options.backoff_cap_us = 2000;
    return options;
  }

  static std::unique_ptr<Router> StartRouter(const RouterOptions& options) {
    auto router = Router::Start(options);
    RRRE_CHECK_OK(router.status());
    return std::move(router).ValueOrDie();
  }

  /// The exact response line direct serving promises for (user, item).
  static std::string ExpectedScoreLine(int64_t user, int64_t item) {
    const auto preds = ref_scorer_a_->Score({{user, item}});
    std::string line =
        FormatScoreLine(user, item, preds.ratings[0], preds.reliabilities[0]);
    line.pop_back();  // Clients strip '\n'.
    return line;
  }

  /// The full catalog response (header + per-item lines, '\n'-joined, no
  /// trailing terminator on the last line) a direct backend would serve.
  static std::vector<std::string> ExpectedCatalog(
      core::BatchScorer* scorer, int64_t user, int64_t num_items) {
    std::vector<std::string> lines;
    std::string header = FormatCatalogHeader(user, num_items);
    header.pop_back();
    lines.push_back(std::move(header));
    const auto preds = scorer->ScoreAllItemsForUser(user);
    for (int64_t item = 0; item < num_items; ++item) {
      std::string line = FormatScoreLine(user, item, preds.ratings[item],
                                         preds.reliabilities[item]);
      line.pop_back();
      lines.push_back(std::move(line));
    }
    return lines;
  }

  static data::ReviewDataset* corpus_;
  static core::RrreTrainer* trainer_b_;
  static core::RrreTrainer* ref_trainer_a_;
  static core::BatchScorer* ref_scorer_a_;
  static std::string* prefix_a_;
};

data::ReviewDataset* RouterTest::corpus_ = nullptr;
core::RrreTrainer* RouterTest::trainer_b_ = nullptr;
core::RrreTrainer* RouterTest::ref_trainer_a_ = nullptr;
core::BatchScorer* RouterTest::ref_scorer_a_ = nullptr;
std::string* RouterTest::prefix_a_ = nullptr;

TEST_F(RouterTest, RoutedPairsAreByteIdenticalToDirectServing) {
  auto fleet = StartFleet(3);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  // Pipeline pairs that hash to every shard; interleave PINGs to prove the
  // response stream stays aligned through the proxy.
  std::string wire;
  std::vector<std::string> expected;
  for (int64_t i = 0; i < 30; ++i) {
    const int64_t user = i % corpus_->num_users();
    const int64_t item = (i * 3) % corpus_->num_items();
    wire += std::to_string(user) + "\t" + std::to_string(item) + "\n";
    expected.push_back(ExpectedScoreLine(user, item));
    if (i % 10 == 9) {
      wire += "PING\n";
      expected.push_back("#pong");
    }
  }
  client.Send(wire);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(client.MustReadLine(), expected[i]) << "response " << i;
  }
  EXPECT_EQ(router->stats().upstream_errors, 0);
  // With a healthy fleet, nothing should have failed over.
  EXPECT_EQ(router->stats().failovers, 0);
}

TEST_F(RouterTest, CatalogFanOutReassemblesByteIdentically) {
  auto fleet = StartFleet(3);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  const std::vector<std::string> expected =
      ExpectedCatalog(ref_scorer_a_, 3, corpus_->num_items());
  client.Send("3\n");
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(client.MustReadLine(), expected[i]) << "line " << i;
  }
  EXPECT_EQ(router->stats().fanouts, 1);
  EXPECT_EQ(router->stats().upstream_errors, 0);
}

TEST_F(RouterTest, ParseAndRangeErrorsMatchDirectServing) {
  auto fleet = StartFleet(2);
  auto router = StartRouter(RoutedOptions(fleet));
  Client direct(fleet[0]->port());
  Client routed(router->port());
  // Parse errors are answered by the router itself; range errors are relayed
  // from the home shard. Either way the bytes must match a direct backend.
  const std::string wire = "x\ty\n999999\t0\n0\t999999\n999999\nPING\n";
  direct.Send(wire);
  routed.Send(wire);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(routed.MustReadLine(), direct.MustReadLine()) << "response " << i;
  }
  EXPECT_EQ(router->stats().parse_errors, 1);
}

TEST_F(RouterTest, KilledShardFailsOverWithoutDroppingARequest) {
  // The acceptance scenario: one of three shards dies mid-stream. Every
  // pipelined request must still be answered, byte-identical to direct
  // serving — the kill shows up only in the failover counters.
  auto fleet = StartFleet(3);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  constexpr int64_t kRequests = 60;
  int victim = -1;
  for (int64_t i = 0; i < kRequests; ++i) {
    const int64_t user = i % corpus_->num_users();
    const int64_t item = (i * 7) % corpus_->num_items();
    if (i == kRequests / 3) {
      // Kill exactly the shard the *next* request homes on: its link in the
      // routed connection is live from the first third of the stream, so the
      // failure is observed mid-conversation, not at connect time.
      victim = router->HomeShard(user);
      fleet[static_cast<size_t>(victim)]->Shutdown();
    }
    client.Send(std::to_string(user) + "\t" + std::to_string(item) + "\n");
    ASSERT_EQ(client.MustReadLine(), ExpectedScoreLine(user, item))
        << "request " << i;
  }
  const RouterStats stats = router->stats();
  EXPECT_EQ(stats.upstream_errors, 0);
  EXPECT_GT(stats.failovers, 0);  // The victim's users were re-homed live.
}

TEST_F(RouterTest, CatalogSurvivesAKilledShardMidFanout) {
  auto fleet = StartFleet(3);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  // Prime the fan-out path once so the routed connection holds live links to
  // every shard, then kill one: the next fan-out loses an in-flight slice
  // (EOF mid-slice) and must recover it item by item.
  const std::vector<std::string> expected =
      ExpectedCatalog(ref_scorer_a_, 5, corpus_->num_items());
  client.Send("5\n");
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(client.MustReadLine(), expected[i]) << "warmup line " << i;
  }
  fleet[2]->Shutdown();
  client.Send("5\n");
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(client.MustReadLine(), expected[i]) << "line " << i;
  }
  EXPECT_EQ(router->stats().upstream_errors, 0);
}

TEST_F(RouterTest, InjectedTransportFaultsOnEverySeamFailOver) {
  // Each router.backend.* seam, armed to fire once, must cost at most a
  // retry — never a wrong or missing response. The seams cover the fault
  // taxonomy: never-sent, reset-after-send (maybe delivered), stalled
  // awaiting the response, and a response torn mid-line.
  auto fleet = StartFleet(2);
  RouterOptions options = RoutedOptions(fleet);
  options.backend_timeout_ms = 2000;
  auto router = StartRouter(options);
  for (const char* seam :
       {"router.backend.send", "router.backend.reset", "router.backend.stall",
        "router.backend.torn"}) {
    SCOPED_TRACE(seam);
    common::failpoint::Config config;
    config.count = 1;
    common::failpoint::Arm(seam, config);
    Client client(router->port());
    client.Send("1\t2\n2\t3\n");
    EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(1, 2));
    EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(2, 3));
    EXPECT_EQ(common::failpoint::FireCount(seam), 1) << seam;
    common::failpoint::DisarmAll();
  }
  const RouterStats stats = router->stats();
  EXPECT_GE(stats.retries, 4);  // One per injected fault.
  EXPECT_EQ(stats.upstream_errors, 0);
}

TEST_F(RouterTest, ExhaustedReplicasAnswerAnUpstreamError) {
  auto fleet = StartFleet(2);
  RouterOptions options = RoutedOptions(fleet);
  options.max_retries = 1;
  auto router = StartRouter(options);
  // Every attempt (home + the single retry) hits an injected never-sent
  // failure, so the request must settle as an explicit upstream error — not
  // hang, not a dropped connection.
  common::failpoint::Arm("router.backend.send");
  Client client(router->port());
  client.Send("1\t2\nPING\n");
  const std::string line = client.MustReadLine();
  EXPECT_EQ(line.find("!ERR\tupstream\t"), 0u) << line;
  common::failpoint::DisarmAll();
  EXPECT_EQ(client.MustReadLine(), "#pong");  // Stream stays aligned.
  EXPECT_EQ(router->stats().upstream_errors, 1);
}

TEST_F(RouterTest, RollingReloadSwitchesTheFleetBehindTheBarrier) {
  // Two shards serving a private copy of checkpoint A; overwrite with B and
  // RELOAD through the router: afterwards both shards serve B (fingerprint
  // converged), and the routed scores are byte-identical to a fresh Load of
  // B — proving the roll touched every shard.
  const std::string prefix = ::testing::TempDir() + "/router_roll_ckpt_" +
                             std::to_string(::getpid());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix).ok());
  std::vector<std::unique_ptr<Server>> fleet;
  fleet.push_back(StartBackend(prefix));
  fleet.push_back(StartBackend(prefix));
  auto router = StartRouter(RoutedOptions(fleet));
  const uint64_t fp_before = router->fleet_fingerprint();
  ASSERT_NE(fp_before, 0u);

  Client client(router->port());
  client.Send("1\t2\n");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(1, 2));

  ASSERT_TRUE(trainer_b_->Save(prefix).ok());
  client.Send("RELOAD\n");
  const std::string reloaded = client.MustReadLine();
  EXPECT_EQ(reloaded.find("#reloaded\t"), 0u) << reloaded;
  EXPECT_NE(router->fleet_fingerprint(), fp_before);
  EXPECT_EQ(router->stats().quarantined, 0);

  core::RrreTrainer loaded_b(TinyConfig());
  ASSERT_TRUE(loaded_b.Load(prefix).ok());
  core::BatchScorer scorer_b(&loaded_b);
  const auto preds = scorer_b.Score({{1, 2}});
  std::string expected =
      FormatScoreLine(1, 2, preds.ratings[0], preds.reliabilities[0]);
  expected.pop_back();
  for (int round = 0; round < 6; ++round) {
    client.Send("1\t2\n");
    EXPECT_EQ(client.MustReadLine(), expected) << "round " << round;
  }
  for (const auto& backend : fleet) {
    EXPECT_EQ(backend->stats().batcher.reloads, 1);
  }
  router->Shutdown();
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(RouterTest, NoCatalogObservesTwoParameterVersionsDuringAReload) {
  // The barrier invariant, attacked: one client hammers full-catalog
  // requests while another rolls the fleet from A to B. Every catalog
  // response must be *entirely* A or *entirely* B — a mixed catalog means a
  // connection observed two parameter versions mid-fan-out.
  const std::string prefix = ::testing::TempDir() + "/router_mix_ckpt_" +
                             std::to_string(::getpid());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix).ok());
  std::vector<std::unique_ptr<Server>> fleet;
  fleet.push_back(StartBackend(prefix));
  fleet.push_back(StartBackend(prefix));
  auto router = StartRouter(RoutedOptions(fleet));

  const int64_t num_items = corpus_->num_items();
  const std::vector<std::string> catalog_a =
      ExpectedCatalog(ref_scorer_a_, 2, num_items);
  ASSERT_TRUE(trainer_b_->Save(prefix).ok());
  core::RrreTrainer loaded_b(TinyConfig());
  ASSERT_TRUE(loaded_b.Load(prefix).ok());
  core::BatchScorer scorer_b(&loaded_b);
  const std::vector<std::string> catalog_b =
      ExpectedCatalog(&scorer_b, 2, num_items);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> catalogs_b{0};
  std::thread attacker([&] {
    Client client(router->port());
    while (!stop.load()) {
      client.Send("2\n");
      std::vector<std::string> got;
      got.push_back(client.MustReadLine());
      for (int64_t i = 0; i < num_items; ++i) {
        got.push_back(client.MustReadLine());
      }
      if (got == catalog_b) {
        catalogs_b.fetch_add(1);
      } else {
        ASSERT_EQ(got, catalog_a) << "catalog mixed parameter versions";
      }
    }
  });
  Client admin(router->port());
  admin.Send("RELOAD\n");
  EXPECT_EQ(admin.MustReadLine().find("#reloaded\t"), 0u);
  // Let the attacker observe the post-roll world before stopping.
  WaitFor([&] { return catalogs_b.load() > 0; });
  stop.store(true);
  attacker.join();
  EXPECT_GT(catalogs_b.load(), 0);
  router->Shutdown();
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(RouterTest, UncertainReloadDeliveryIsVerifiedNeverResent) {
  // Arm a reset that fires on the RELOAD send (after the STATS probe): the
  // request reached the backend but the answer is lost. The router must
  // verify via the generation counter instead of blindly resending — the
  // backend reloads exactly once.
  const std::string prefix = ::testing::TempDir() + "/router_once_ckpt_" +
                             std::to_string(::getpid());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix).ok());
  std::vector<std::unique_ptr<Server>> fleet;
  fleet.push_back(StartBackend(prefix));
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  common::failpoint::Config config;
  config.after = 1;  // Skip the pre-reload STATS probe round trip.
  config.count = 1;
  common::failpoint::Arm("router.backend.reset", config);
  client.Send("RELOAD\n");
  const std::string line = client.MustReadLine();
  EXPECT_EQ(line.find("#reloaded\t"), 0u) << line;
  EXPECT_EQ(common::failpoint::FireCount("router.backend.reset"), 1);
  EXPECT_EQ(fleet[0]->stats().batcher.reloads, 1);  // Once, not twice.
  router->Shutdown();
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(RouterTest, SideChannelDivergenceIsQuarantined) {
  // Two backends on two prefixes holding identical parameters (same
  // fingerprint, so startup accepts the fleet). Reload one *behind the
  // router's back* onto different parameters: the health pass must spot the
  // fingerprint divergence and quarantine the shard, and routed traffic must
  // keep scoring under the fleet's version.
  const std::string prefix1 = ::testing::TempDir() + "/router_q1_ckpt_" +
                              std::to_string(::getpid());
  const std::string prefix2 = ::testing::TempDir() + "/router_q2_ckpt_" +
                              std::to_string(::getpid());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix1).ok());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix2).ok());
  std::vector<std::unique_ptr<Server>> fleet;
  fleet.push_back(StartBackend(prefix1));
  fleet.push_back(StartBackend(prefix2));
  auto router = StartRouter(RoutedOptions(fleet));
  ASSERT_TRUE(router->BackendServing(0));
  ASSERT_TRUE(router->BackendServing(1));

  ASSERT_TRUE(trainer_b_->Save(prefix2).ok());
  Client direct(fleet[1]->port());
  direct.Send("RELOAD\n");
  EXPECT_EQ(direct.MustReadLine().find("#reloaded\t"), 0u);
  ASSERT_TRUE(WaitFor([&] { return !router->BackendServing(1); }))
      << "health pass never quarantined the diverged shard";
  EXPECT_EQ(router->stats().quarantined, 1);
  EXPECT_TRUE(router->BackendServing(0));

  // Every user now routes to the converged shard — bytes stay version A.
  Client client(router->port());
  for (int64_t user = 0; user < 6; ++user) {
    client.Send(std::to_string(user) + "\t1\n");
    EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(user, 1))
        << "user " << user;
  }
  router->Shutdown();
  for (const std::string& prefix : {prefix1, prefix2}) {
    for (const char* suffix :
         {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
      std::remove((prefix + suffix).c_str());
    }
  }
}

TEST_F(RouterTest, StartupRefusesAFleetServingTwoParameterVersions) {
  const std::string prefix_b = ::testing::TempDir() + "/router_mixfleet_ckpt_" +
                               std::to_string(::getpid());
  ASSERT_TRUE(trainer_b_->Save(prefix_b).ok());
  std::vector<std::unique_ptr<Server>> fleet;
  fleet.push_back(StartBackend(*prefix_a_));
  fleet.push_back(StartBackend(prefix_b));
  auto router = Router::Start(RoutedOptions(fleet));
  EXPECT_FALSE(router.ok());
  EXPECT_NE(router.status().message().find("fingerprint"), std::string::npos)
      << router.status().ToString();
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix_b + suffix).c_str());
  }
}

TEST_F(RouterTest, MetricsAggregateEveryShardWithLabels) {
  auto fleet = StartFleet(2);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  client.Send("0\t1\n1\t2\nMETRICS\n");
  client.MustReadLine();
  client.MustReadLine();
  const std::string header = client.MustReadLine();
  ASSERT_EQ(header.find("#metrics\tlines="), 0u) << header;
  const long long lines =
      std::atoll(header.c_str() + sizeof("#metrics\tlines=") - 1);
  ASSERT_GT(lines, 0) << header;
  std::string text;
  for (long long i = 0; i < lines; ++i) text += client.MustReadLine() + "\n";
  // The router's own series plus every shard's, relabeled per shard.
  EXPECT_NE(text.find("rrre_router_requests_total"), std::string::npos)
      << text;
  EXPECT_NE(text.find("shard=\"0\""), std::string::npos) << text;
  EXPECT_NE(text.find("shard=\"1\""), std::string::npos) << text;
  EXPECT_NE(text.find("rrre_serve_requests_total{shard="), std::string::npos)
      << text;
}

TEST_F(RouterTest, StatsLineDrivesLoadgenBoundsDiscovery) {
  auto fleet = StartFleet(2);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  client.Send("STATS\n");
  const std::string stats_line = client.MustReadLine();
  EXPECT_EQ(stats_line.find("#stats\t"), 0u) << stats_line;
  EXPECT_NE(stats_line.find("users=" + std::to_string(corpus_->num_users())),
            std::string::npos)
      << stats_line;
  EXPECT_NE(stats_line.find("items=" + std::to_string(corpus_->num_items())),
            std::string::npos)
      << stats_line;
  // The real consumer: loadgen pointed at the router, discovering bounds via
  // STATS and settling every request as a score.
  LoadGenOptions options;
  options.port = router->port();
  options.connections = 2;
  options.total_requests = 40;
  options.seed = 7;
  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().scored, 40);
  EXPECT_EQ(report.value().errors, 0);
}

TEST_F(RouterTest, ShutdownAnswersInFlightRequestsBeforeClosing) {
  auto fleet = StartFleet(2);
  auto router = StartRouter(RoutedOptions(fleet));
  Client client(router->port());
  client.Send("0\t1\n1\t2\n");
  // Shut down only once both requests are admitted (parsed by the handler),
  // so the test pins the drain guarantee, not an accept race.
  ASSERT_TRUE(WaitFor([&] { return router->stats().requests == 2; }));
  std::thread shutdown_thread([&] { router->Shutdown(); });
  // The handler finishes what the client already pipelined, then half-close
  // surfaces as EOF — no admitted request is dropped.
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(0, 1));
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(1, 2));
  EXPECT_FALSE(client.ReadLine().has_value());
  shutdown_thread.join();
}

}  // namespace
}  // namespace rrre::serve
