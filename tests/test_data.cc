#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/profiles.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "data/wordbanks.h"
#include "text/tokenizer.h"

namespace rrre::data {
namespace {

using common::Rng;

Review MakeReview(int64_t user, int64_t item, float rating, int64_t ts,
                  ReliabilityLabel label = ReliabilityLabel::kBenign,
                  std::string text = "nice") {
  Review r;
  r.user = user;
  r.item = item;
  r.rating = rating;
  r.label = label;
  r.timestamp = ts;
  r.text = std::move(text);
  return r;
}

ReviewDataset SmallDataset() {
  ReviewDataset ds(3, 2);
  ds.Add(MakeReview(0, 0, 5.0f, 10));
  ds.Add(MakeReview(0, 1, 4.0f, 5));
  ds.Add(MakeReview(1, 0, 1.0f, 7, ReliabilityLabel::kFake, "worst scam"));
  ds.Add(MakeReview(2, 1, 3.0f, 20));
  ds.BuildIndex();
  return ds;
}

// ---------------------------------------------------------------------------
// ReviewDataset
// ---------------------------------------------------------------------------

TEST(DatasetTest, IndexesSortedByTimestamp) {
  ReviewDataset ds = SmallDataset();
  const auto& u0 = ds.ReviewsByUser(0);
  ASSERT_EQ(u0.size(), 2u);
  // Review with ts=5 (index 1) must come before ts=10 (index 0).
  EXPECT_EQ(u0[0], 1);
  EXPECT_EQ(u0[1], 0);
  const auto& i0 = ds.ReviewsByItem(0);
  ASSERT_EQ(i0.size(), 2u);
  EXPECT_EQ(i0[0], 2);  // ts=7
  EXPECT_EQ(i0[1], 0);  // ts=10
}

TEST(DatasetTest, StatsMatchHandCount) {
  ReviewDataset ds = SmallDataset();
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.num_reviews, 4);
  EXPECT_EQ(s.num_users, 3);
  EXPECT_EQ(s.num_items, 2);
  EXPECT_NEAR(s.fake_fraction, 0.25, 1e-9);
  EXPECT_EQ(s.max_user_degree, 2);
  EXPECT_EQ(s.median_user_degree, 1);
  EXPECT_EQ(s.max_item_degree, 2);
  EXPECT_EQ(s.median_item_degree, 2);
}

TEST(DatasetTest, ItemMeanRatings) {
  ReviewDataset ds = SmallDataset();
  auto means = ds.ItemMeanRatings();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_NEAR(means[0], 3.0, 1e-9);   // (5 + 1) / 2
  EXPECT_NEAR(means[1], 3.5, 1e-9);   // (4 + 3) / 2
}

TEST(DatasetTest, ItemMeanFallsBackToGlobalMean) {
  ReviewDataset ds(2, 3);
  ds.Add(MakeReview(0, 0, 5.0f, 1));
  ds.Add(MakeReview(1, 0, 1.0f, 2));
  ds.BuildIndex();
  auto means = ds.ItemMeanRatings();
  EXPECT_NEAR(means[1], 3.0, 1e-9);
  EXPECT_NEAR(means[2], 3.0, 1e-9);
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  ReviewDataset ds = SmallDataset();
  const std::string path = ::testing::TempDir() + "/rrre_ds.tsv";
  ASSERT_TRUE(ds.SaveTsv(path).ok());
  auto loaded = ReviewDataset::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  const ReviewDataset& l = loaded.value();
  ASSERT_EQ(l.size(), ds.size());
  EXPECT_EQ(l.num_users(), 3);
  EXPECT_EQ(l.num_items(), 2);
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(l.review(i).user, ds.review(i).user);
    EXPECT_EQ(l.review(i).item, ds.review(i).item);
    EXPECT_EQ(l.review(i).rating, ds.review(i).rating);
    EXPECT_EQ(l.review(i).label, ds.review(i).label);
    EXPECT_EQ(l.review(i).timestamp, ds.review(i).timestamp);
    EXPECT_EQ(l.review(i).text, ds.review(i).text);
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsMissingHeader) {
  const std::string path = ::testing::TempDir() + "/rrre_bad_ds.tsv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0\t0\t5.0\t1\t3\thello\n", f);
  std::fclose(f);
  EXPECT_FALSE(ReviewDataset::LoadTsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, SplitPreservesAllReviews) {
  Rng rng(1);
  DatasetProfile p = YelpChiProfile(0.05);
  ReviewDataset ds = GenerateSyntheticDataset(p, rng);
  auto [train, test] = ds.Split(0.7, rng);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  EXPECT_GT(test.size(), 0);
  // Roughly 70/30 (coverage fixups may shift it slightly).
  EXPECT_NEAR(static_cast<double>(train.size()) / ds.size(), 0.7, 0.1);
}

TEST(DatasetTest, SplitKeepsUserAndItemCoverageInTrain) {
  Rng rng(2);
  DatasetProfile p = YelpChiProfile(0.05);
  ReviewDataset ds = GenerateSyntheticDataset(p, rng);
  auto [train, test] = ds.Split(0.7, rng);
  std::set<int64_t> users_with_reviews;
  std::set<int64_t> items_with_reviews;
  for (const Review& r : ds.reviews()) {
    users_with_reviews.insert(r.user);
    items_with_reviews.insert(r.item);
  }
  std::set<int64_t> train_users;
  std::set<int64_t> train_items;
  for (const Review& r : train.reviews()) {
    train_users.insert(r.user);
    train_items.insert(r.item);
  }
  EXPECT_EQ(train_users.size(), users_with_reviews.size());
  EXPECT_EQ(train_items.size(), items_with_reviews.size());
}

// ---------------------------------------------------------------------------
// SampleHistory
// ---------------------------------------------------------------------------

TEST(SamplingTest, PadsShortHistory) {
  Rng rng(3);
  auto out = SampleHistory({7, 9}, 4, SamplingStrategy::kLatest, rng);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 9);
  EXPECT_EQ(out[2], -1);
  EXPECT_EQ(out[3], -1);
}

TEST(SamplingTest, LatestKeepsMostRecent) {
  Rng rng(4);
  // Ascending by time; latest-3 = {30, 40, 50}.
  auto out = SampleHistory({10, 20, 30, 40, 50}, 3, SamplingStrategy::kLatest,
                           rng);
  EXPECT_EQ(out, (std::vector<int64_t>{30, 40, 50}));
}

TEST(SamplingTest, RandomKeepsTemporalOrderOfPicks) {
  Rng rng(5);
  std::vector<int64_t> history = {10, 20, 30, 40, 50, 60};
  auto out = SampleHistory(history, 3, SamplingStrategy::kRandom, rng);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  std::set<int64_t> allowed(history.begin(), history.end());
  for (int64_t v : out) EXPECT_TRUE(allowed.count(v));
}

TEST(SamplingTest, ExcludeDropsTargetReview) {
  Rng rng(6);
  auto out = SampleHistory({1, 2, 3}, 3, SamplingStrategy::kLatest, rng,
                           /*exclude=*/2);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 3, -1}));
}

TEST(SamplingTest, RandomCoversWholeHistoryOverManyDraws) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (int64_t v :
         SampleHistory({1, 2, 3, 4, 5}, 2, SamplingStrategy::kRandom, rng)) {
      seen.insert(v);
    }
  }
  EXPECT_EQ(seen.size(), 5u);
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

TEST(ProfilesTest, AllNamesResolve) {
  for (const char* name :
       {"yelpchi", "yelpnyc", "yelpzip", "musics", "cds"}) {
    auto p = ProfileByName(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_EQ(p.value().name, name);
  }
  EXPECT_FALSE(ProfileByName("nope").ok());
}

TEST(ProfilesTest, UnknownNameErrorListsValidProfiles) {
  for (const char* bad : {"", "yelp", "yelpchi2", "CDs ", "amazon"}) {
    auto p = ProfileByName(bad);
    ASSERT_FALSE(p.ok()) << "\"" << bad << "\" resolved unexpectedly";
    const std::string message = p.status().ToString();
    // The error names the offender and every valid choice, so a mistyped
    // --dataset flag is self-diagnosing.
    EXPECT_NE(message.find("unknown dataset profile"), std::string::npos)
        << message;
    for (const char* valid :
         {"yelpchi", "yelpnyc", "yelpzip", "musics", "cds"}) {
      EXPECT_NE(message.find(valid), std::string::npos)
          << message << " lacks " << valid;
    }
  }
}

TEST(ProfilesTest, NamesAreCaseInsensitive) {
  auto upper = ProfileByName("YelpChi");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper.value().name, "yelpchi");
}

TEST(ProfilesTest, AllProfilesWellFormedAtEveryScale) {
  for (const char* name :
       {"yelpchi", "yelpnyc", "yelpzip", "musics", "cds"}) {
    for (double scale : {0.02, 0.1, 0.5, 1.0, 2.0}) {
      auto p = ProfileByName(name, scale);
      ASSERT_TRUE(p.ok()) << name << " scale=" << scale;
      const DatasetProfile& profile = p.value();
      EXPECT_GT(profile.fake_fraction, 0.0) << name << " scale=" << scale;
      EXPECT_LT(profile.fake_fraction, 1.0) << name << " scale=" << scale;
      EXPECT_GT(profile.num_reviews, 0) << name << " scale=" << scale;
      EXPECT_GT(profile.num_users, 0) << name << " scale=" << scale;
      EXPECT_GT(profile.num_items, 0) << name << " scale=" << scale;
      EXPECT_GT(profile.fraud_user_fraction, 0.0) << name;
      EXPECT_LT(profile.fraud_user_fraction, 1.0) << name;
      EXPECT_GE(profile.campaign_size_max, profile.campaign_size_min) << name;
      EXPECT_GT(profile.campaign_size_min, 0) << name;
      EXPECT_GT(profile.horizon_days, 0) << name;
    }
  }
}

TEST(ProfilesTest, TableIIOrderingsPreserved) {
  auto chi = YelpChiProfile();
  auto nyc = YelpNycProfile();
  auto zip = YelpZipProfile();
  auto musics = MusicsProfile();
  auto cds = CdsProfile();
  // Size ordering of the Yelp corpora.
  EXPECT_LT(chi.num_reviews, nyc.num_reviews);
  EXPECT_LT(nyc.num_reviews, zip.num_reviews);
  // Amazon datasets are more fake-heavy than Yelp ones.
  EXPECT_GT(musics.fake_fraction, zip.fake_fraction);
  EXPECT_GT(cds.fake_fraction, zip.fake_fraction);
  // Amazon item universes dwarf their user-degree (low item degree).
  EXPECT_GT(musics.num_items, musics.num_users);
  EXPECT_GT(cds.num_items, cds.num_users);
}

TEST(ProfilesTest, ScaleChangesCounts) {
  auto small = YelpChiProfile(0.1);
  auto big = YelpChiProfile(1.0);
  EXPECT_LT(small.num_reviews, big.num_reviews);
  EXPECT_LT(small.num_items, big.num_items);
}

// ---------------------------------------------------------------------------
// Word banks
// ---------------------------------------------------------------------------

TEST(WordbanksTest, PoolsAreNonEmptyAndDisjointSentiment) {
  EXPECT_GE(wordbanks::Positive().size(), 20u);
  EXPECT_GE(wordbanks::Negative().size(), 20u);
  std::set<std::string_view> pos(wordbanks::Positive().begin(),
                                 wordbanks::Positive().end());
  for (auto w : wordbanks::Negative()) EXPECT_FALSE(pos.count(w)) << w;
}

TEST(WordbanksTest, SpamPoolsDisjointFromBenignSentiment) {
  std::set<std::string_view> benign;
  for (auto w : wordbanks::Positive()) benign.insert(w);
  for (auto w : wordbanks::Negative()) benign.insert(w);
  for (auto w : wordbanks::SpamPromote()) EXPECT_FALSE(benign.count(w)) << w;
  for (auto w : wordbanks::SpamDemote()) EXPECT_FALSE(benign.count(w)) << w;
}

TEST(WordbanksTest, CategoriesHaveDistinctAspects) {
  ASSERT_GE(wordbanks::NumCategories(), 2);
  std::set<std::string_view> a(wordbanks::Aspects(0).begin(),
                               wordbanks::Aspects(0).end());
  for (auto w : wordbanks::Aspects(1)) EXPECT_FALSE(a.count(w)) << w;
}

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

class SyntheticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    profile_ = YelpChiProfile(0.2);
    ds_ = std::make_unique<ReviewDataset>(
        GenerateSyntheticDataset(profile_, rng, &world_));
  }
  DatasetProfile profile_;
  SyntheticWorld world_;
  std::unique_ptr<ReviewDataset> ds_;
};

TEST_F(SyntheticTest, CountsMatchProfile) {
  EXPECT_EQ(ds_->num_users(), profile_.num_users);
  EXPECT_EQ(ds_->num_items(), profile_.num_items);
  // Campaigns emit in chunks, so total review count is within one campaign
  // of the target.
  EXPECT_GE(ds_->size(), profile_.num_reviews - 16);
  EXPECT_LE(ds_->size(), profile_.num_reviews + 16);
  const DatasetStats s = ds_->Stats();
  EXPECT_NEAR(s.fake_fraction, profile_.fake_fraction, 0.02);
}

TEST_F(SyntheticTest, MostFakeReviewsComeFromFraudsters) {
  // The filtering oracle's false positives put a few benign users' reviews
  // into the labeled-fake set; the bulk must still be campaign output.
  int64_t fake = 0;
  int64_t fake_by_fraudster = 0;
  for (const Review& r : ds_->reviews()) {
    if (!r.is_benign()) {
      ++fake;
      fake_by_fraudster +=
          world_.is_fraudster[static_cast<size_t>(r.user)] ? 1 : 0;
    }
  }
  ASSERT_GT(fake, 0);
  EXPECT_GT(static_cast<double>(fake_by_fraudster) / fake, 0.6);
}

TEST_F(SyntheticTest, FakeRatingsSkewExtreme) {
  int64_t fake = 0;
  int64_t polarized = 0;
  for (const Review& r : ds_->reviews()) {
    if (!r.is_benign()) {
      ++fake;
      polarized += (r.rating <= 2.0f || r.rating >= 4.0f) ? 1 : 0;
    }
  }
  ASSERT_GT(fake, 0);
  EXPECT_GT(static_cast<double>(polarized) / fake, 0.8);
}

TEST_F(SyntheticTest, BenignRatingsTrackItemQuality) {
  // Average benign rating of high-quality items must exceed low-quality ones.
  double hi_sum = 0.0;
  double lo_sum = 0.0;
  int64_t hi_n = 0;
  int64_t lo_n = 0;
  for (const Review& r : ds_->reviews()) {
    if (!r.is_benign()) continue;
    if (world_.item_quality[static_cast<size_t>(r.item)] > 0.5) {
      hi_sum += r.rating;
      ++hi_n;
    } else if (world_.item_quality[static_cast<size_t>(r.item)] < -0.5) {
      lo_sum += r.rating;
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 20);
  ASSERT_GT(lo_n, 20);
  EXPECT_GT(hi_sum / hi_n, lo_sum / lo_n + 0.8);
}

TEST_F(SyntheticTest, SpamVocabularyConcentratesInFakeReviews) {
  std::set<std::string> spam_words;
  for (auto w : wordbanks::SpamPromote()) spam_words.emplace(w);
  for (auto w : wordbanks::SpamDemote()) spam_words.emplace(w);
  auto spam_ratio = [&](const Review& r) {
    auto toks = text::Tokenize(r.text);
    if (toks.empty()) return 0.0;
    int hits = 0;
    for (const auto& t : toks) hits += spam_words.count(t) ? 1 : 0;
    return static_cast<double>(hits) / toks.size();
  };
  double fake_ratio = 0.0;
  double benign_ratio = 0.0;
  int64_t nf = 0;
  int64_t nb = 0;
  for (const Review& r : ds_->reviews()) {
    if (r.is_benign()) {
      benign_ratio += spam_ratio(r);
      ++nb;
    } else {
      fake_ratio += spam_ratio(r);
      ++nf;
    }
  }
  // The filter-missed campaign reviews sit in the benign-labeled pool, so
  // its average is small but not zero.
  EXPECT_GT(fake_ratio / nf, 0.2);
  EXPECT_LT(benign_ratio / nb, 0.12);
  EXPECT_GT(fake_ratio / nf, 4.0 * benign_ratio / nb);
}

TEST_F(SyntheticTest, FakeReviewsBurstInTime) {
  // Max reviews in any single day per fraudulent item should far exceed the
  // benign per-day rate for that item.
  std::map<std::pair<int64_t, int64_t>, int64_t> fake_day_counts;
  for (const Review& r : ds_->reviews()) {
    if (!r.is_benign()) {
      ++fake_day_counts[{r.item, r.timestamp / profile_.campaign_burst_days}];
    }
  }
  int64_t max_burst = 0;
  for (const auto& [key, count] : fake_day_counts) {
    max_burst = std::max(max_burst, count);
  }
  EXPECT_GE(max_burst, 4);
}

TEST_F(SyntheticTest, BenignSentimentMatchesRating) {
  std::set<std::string> pos;
  std::set<std::string> neg;
  for (auto w : wordbanks::Positive()) pos.emplace(w);
  for (auto w : wordbanks::Negative()) neg.emplace(w);
  int64_t consistent = 0;
  int64_t total = 0;
  for (const Review& r : ds_->reviews()) {
    if (!r.is_benign() || (r.rating > 2.0f && r.rating < 4.0f)) continue;
    int p = 0;
    int n = 0;
    for (const auto& t : text::Tokenize(r.text)) {
      p += pos.count(t) ? 1 : 0;
      n += neg.count(t) ? 1 : 0;
    }
    if (p + n == 0) continue;
    ++total;
    if ((r.rating >= 4.0f && p >= n) || (r.rating <= 2.0f && n >= p)) {
      ++consistent;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(consistent) / total, 0.9);
}

TEST_F(SyntheticTest, DeterministicForSeed) {
  Rng rng1(7);
  Rng rng2(7);
  DatasetProfile p = YelpChiProfile(0.05);
  ReviewDataset a = GenerateSyntheticDataset(p, rng1);
  ReviewDataset b = GenerateSyntheticDataset(p, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.review(i).user, b.review(i).user);
    EXPECT_EQ(a.review(i).text, b.review(i).text);
  }
}

TEST_F(SyntheticTest, CampaignsTargetPromotesBadItems) {
  // Promoted (high-rated fake, fraudster-authored) items should mostly have
  // below-average quality; demotion campaigns the reverse. A single small
  // corpus holds only ~a dozen campaigns, so aggregate over several seeds.
  int64_t promote_bad = 0;
  int64_t promote_total = 0;
  int64_t demote_good = 0;
  int64_t demote_total = 0;
  for (uint64_t seed : {101u, 202u, 303u, 404u}) {
    Rng rng(seed);
    SyntheticWorld world;
    ReviewDataset ds =
        GenerateSyntheticDataset(YelpChiProfile(0.3), rng, &world);
    for (const Review& r : ds.reviews()) {
      if (r.is_benign()) continue;
      if (!world.is_fraudster[static_cast<size_t>(r.user)]) continue;
      const bool bad = world.item_quality[static_cast<size_t>(r.item)] < 0.0;
      if (r.rating >= 4.0f) {
        ++promote_total;
        promote_bad += bad ? 1 : 0;
      } else if (r.rating <= 2.0f) {
        ++demote_total;
        demote_good += bad ? 0 : 1;
      }
    }
  }
  ASSERT_GT(promote_total, 50);
  ASSERT_GT(demote_total, 50);
  EXPECT_GT(static_cast<double>(promote_bad) / promote_total, 0.55);
  EXPECT_GT(static_cast<double>(demote_good) / demote_total, 0.55);
}

TEST_F(SyntheticTest, AmazonProfileHasLowItemDegree) {
  Rng rng(11);
  ReviewDataset musics = GenerateSyntheticDataset(MusicsProfile(0.2), rng);
  const DatasetStats s = musics.Stats();
  EXPECT_LE(s.median_item_degree, 4);
  Rng rng2(11);
  ReviewDataset chi = GenerateSyntheticDataset(YelpChiProfile(0.2), rng2);
  EXPECT_GT(chi.Stats().median_item_degree, s.median_item_degree);
}

}  // namespace
}  // namespace rrre::data
