// End-to-end tests of the rrre_served online server over real TCP sockets:
// bitwise identity with the offline rrre_serve pipeline, pipelined response
// ordering, protocol errors, overload backpressure, hot checkpoint reload,
// graceful drain, and the connection limit. This suite runs under
// ThreadSanitizer in tools/check.sh.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/socket.h"
#include "core/scorer.h"
#include "core/serving.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace rrre::serve {
namespace {

using common::Rng;
using common::Socket;

core::RrreConfig TinyConfig() {
  core::RrreConfig c;
  c.word_dim = 8;
  c.rev_dim = 8;
  c.id_dim = 4;
  c.attention_dim = 6;
  c.fm_factors = 4;
  c.max_tokens = 8;
  c.s_u = 3;
  c.s_i = 4;
  c.batch_size = 16;
  c.epochs = 2;
  c.pretrain_epochs = 1;
  return c;
}

/// Minimal blocking line-protocol client.
class Client {
 public:
  explicit Client(uint16_t port) {
    auto socket = Socket::Connect("127.0.0.1", port);
    RRRE_CHECK_OK(socket.status());
    socket_ = std::move(socket).ValueOrDie();
    reader_ = std::make_unique<common::LineReader>(&socket_);
  }

  void Send(const std::string& data) { RRRE_CHECK_OK(socket_.SendAll(data)); }

  /// Next response line (terminator stripped); empty optional on EOF.
  std::optional<std::string> ReadLine() {
    auto line = reader_->ReadLine();
    RRRE_CHECK_OK(line.status());
    return std::move(line).ValueOrDie();
  }

  std::string MustReadLine() {
    auto line = ReadLine();
    RRRE_CHECK(line.has_value()) << "unexpected EOF from server";
    return *line;
  }

 private:
  Socket socket_;
  std::unique_ptr<common::LineReader> reader_;
};

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 20000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Two fitted trainers (A, the default checkpoint; B, fitted on a different
/// corpus draw — for the hot-reload switch) shared by the suite. Exact-match
/// references are trainers *loaded* from the checkpoints, same as the server
/// does, so comparisons are byte-for-byte.
class ServedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng_a(27);
    corpus_ = new data::ReviewDataset(
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng_a));
    core::RrreTrainer trainer_a(TinyConfig());
    trainer_a.Fit(*corpus_);
    // ctest runs every test as its own process, concurrently: the fixture
    // paths must be per-process or parallel tests race on the checkpoint
    // (one process's TearDownTestSuite deletes the files another is loading).
    prefix_a_ = new std::string(::testing::TempDir() + "/served_ckpt_a_" +
                                std::to_string(::getpid()));
    ASSERT_TRUE(trainer_a.Save(*prefix_a_).ok());

    Rng rng_b(99);
    data::ReviewDataset corpus_b =
        data::GenerateSyntheticDataset(data::YelpChiProfile(0.05), rng_b);
    trainer_b_ = new core::RrreTrainer(TinyConfig());
    trainer_b_->Fit(corpus_b);

    ref_trainer_a_ = new core::RrreTrainer(TinyConfig());
    ASSERT_TRUE(ref_trainer_a_->Load(*prefix_a_).ok());
    ref_scorer_a_ = new core::BatchScorer(ref_trainer_a_);
  }

  static void TearDownTestSuite() {
    for (const char* suffix :
         {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
      std::remove((*prefix_a_ + suffix).c_str());
    }
    delete ref_scorer_a_;
    delete ref_trainer_a_;
    delete trainer_b_;
    delete corpus_;
    delete prefix_a_;
    ref_scorer_a_ = nullptr;
    ref_trainer_a_ = nullptr;
    trainer_b_ = nullptr;
    corpus_ = nullptr;
    prefix_a_ = nullptr;
  }

  static ServerOptions BaseOptions() {
    ServerOptions options;
    options.config = TinyConfig();
    options.model_prefix = *prefix_a_;
    options.port = 0;  // Ephemeral; tests read server->port().
    return options;
  }

  static std::unique_ptr<Server> StartServer(const ServerOptions& options) {
    auto server = Server::Start(options);
    RRRE_CHECK_OK(server.status());
    return std::move(server).ValueOrDie();
  }

  /// The exact response line the protocol promises for (user, item), built
  /// from the checkpoint-loaded reference model.
  static std::string ExpectedScoreLine(int64_t user, int64_t item) {
    const auto preds = ref_scorer_a_->Score({{user, item}});
    std::string line =
        FormatScoreLine(user, item, preds.ratings[0], preds.reliabilities[0]);
    line.pop_back();  // The client strips '\n'.
    return line;
  }

  static data::ReviewDataset* corpus_;
  static core::RrreTrainer* trainer_b_;
  static core::RrreTrainer* ref_trainer_a_;
  static core::BatchScorer* ref_scorer_a_;
  static std::string* prefix_a_;
};

data::ReviewDataset* ServedTest::corpus_ = nullptr;
core::RrreTrainer* ServedTest::trainer_b_ = nullptr;
core::RrreTrainer* ServedTest::ref_trainer_a_ = nullptr;
core::BatchScorer* ServedTest::ref_scorer_a_ = nullptr;
std::string* ServedTest::prefix_a_ = nullptr;

TEST_F(ServedTest, EndToEndMatchesOfflineServeBitwise) {
  // Run the same requests through the offline tool's pipeline and through a
  // live server; every online response line must be byte-identical to the
  // corresponding offline TSV row, with zero dropped or misrouted responses.
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::string request_tsv = "user\titem\n";
  std::string wire;
  for (int64_t i = 0; i < 25; ++i) {
    const data::Review& r = corpus_->review((i * 7) % corpus_->size());
    pairs.emplace_back(r.user, r.item);
    const std::string line =
        std::to_string(r.user) + "\t" + std::to_string(r.item) + "\n";
    request_tsv += line;
    wire += line;
  }
  const std::string in = ::testing::TempDir() + "/served_e2e_req_" +
                         std::to_string(::getpid()) + ".tsv";
  const std::string out = ::testing::TempDir() + "/served_e2e_out_" +
                          std::to_string(::getpid()) + ".tsv";
  ASSERT_TRUE(common::WriteFile(in, request_tsv).ok());
  core::ServeOptions offline;
  offline.model_prefix = *prefix_a_;
  offline.input_path = in;
  offline.output_path = out;
  ASSERT_TRUE(core::LoadAndServe(TinyConfig(), offline).ok());
  auto offline_text = common::ReadFile(out);
  ASSERT_TRUE(offline_text.ok());
  const std::vector<std::string> offline_lines =
      SplitLines(offline_text.value());
  ASSERT_EQ(offline_lines.size(), pairs.size() + 1);  // Header + rows.

  auto server = StartServer(BaseOptions());
  Client client(server->port());
  client.Send(wire);  // All 25 requests pipelined in one write.
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(client.MustReadLine(), offline_lines[i + 1]) << "request " << i;
  }
  server->Shutdown();
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.requests, 25);
  EXPECT_EQ(stats.batcher.pairs_scored, 25);
  EXPECT_EQ(stats.overloads, 0);
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST_F(ServedTest, PipelinedResponsesArriveInRequestOrder) {
  auto server = StartServer(BaseOptions());
  Client client(server->port());
  // Interleave instant control responses with batched score requests: the
  // per-connection FIFO must hold responses back until earlier slots fill.
  client.Send("0\t1\nPING\n2\t3\nPING\n1\t2\n");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(0, 1));
  EXPECT_EQ(client.MustReadLine(), "#pong");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(2, 3));
  EXPECT_EQ(client.MustReadLine(), "#pong");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(1, 2));
}

TEST_F(ServedTest, CatalogRequestStreamsEveryItem) {
  auto server = StartServer(BaseOptions());
  Client client(server->port());
  client.Send("3\n");
  EXPECT_EQ(client.MustReadLine(),
            "#catalog\t3\t" + std::to_string(corpus_->num_items()));
  const auto reference = ref_scorer_a_->ScoreAllItemsForUser(3);
  for (int64_t item = 0; item < corpus_->num_items(); ++item) {
    std::string expected =
        FormatScoreLine(3, item, reference.ratings[item],
                        reference.reliabilities[item]);
    expected.pop_back();
    EXPECT_EQ(client.MustReadLine(), expected) << "item " << item;
  }
}

TEST_F(ServedTest, ParseAndRangeErrorsAreAnsweredInline) {
  auto server = StartServer(BaseOptions());
  Client client(server->port());
  // Blank lines and comments get no response; the trailing PING proves the
  // stream stayed aligned.
  client.Send("x\ty\n0\t1\t2\n999999\t0\n0\t999999\n\n# comment\nPING\n");
  std::string line = client.MustReadLine();
  EXPECT_TRUE(IsErrorLine(line)) << line;
  EXPECT_EQ(line.find("!ERR\tparse\t"), 0u) << line;
  line = client.MustReadLine();
  EXPECT_EQ(line.find("!ERR\tparse\t"), 0u) << line;
  line = client.MustReadLine();
  EXPECT_EQ(line.find("!ERR\trange\t"), 0u) << line;
  EXPECT_NE(line.find("user 999999"), std::string::npos) << line;
  line = client.MustReadLine();
  EXPECT_EQ(line.find("!ERR\trange\t"), 0u) << line;
  EXPECT_NE(line.find("item 999999"), std::string::npos) << line;
  EXPECT_EQ(client.MustReadLine(), "#pong");
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.parse_errors, 2);
  EXPECT_EQ(stats.range_errors, 2);
}

TEST_F(ServedTest, PingStatsQuitProtocol) {
  auto server = StartServer(BaseOptions());
  Client client(server->port());
  client.Send("PING\nSTATS\nQUIT\n");
  EXPECT_EQ(client.MustReadLine(), "#pong");
  const std::string stats_line = client.MustReadLine();
  EXPECT_EQ(stats_line.find("#stats\t"), 0u) << stats_line;
  // Loadgen discovers id ranges from these fields.
  EXPECT_NE(stats_line.find("users=" + std::to_string(corpus_->num_users())),
            std::string::npos)
      << stats_line;
  EXPECT_NE(stats_line.find("items=" + std::to_string(corpus_->num_items())),
            std::string::npos)
      << stats_line;
  EXPECT_NE(stats_line.find("generation=0"), std::string::npos) << stats_line;
  EXPECT_EQ(client.MustReadLine(), "#bye");
  EXPECT_FALSE(client.ReadLine().has_value());  // Server closed after QUIT.
}

TEST_F(ServedTest, OverloadIsAnsweredExplicitlyAndInOrder) {
  // A paused batcher with a capacity-4 queue makes backpressure
  // deterministic: of 10 pipelined requests, exactly 4 are admitted and 6
  // must be refused with an explicit overload error — never blocked on.
  ServerOptions options = BaseOptions();
  options.batcher.queue_capacity = 4;
  options.batcher.start_paused = true;
  auto server = StartServer(options);
  Client client(server->port());
  std::string wire;
  for (int i = 0; i < 10; ++i) {
    wire += std::to_string(i % 4) + "\t" + std::to_string(i % 5) + "\n";
  }
  client.Send(wire);
  ASSERT_TRUE(WaitFor([&] { return server->stats().requests == 10; }));
  {
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.batcher.submitted, 4);
    EXPECT_EQ(stats.batcher.rejected, 6);
    EXPECT_EQ(stats.overloads, 6);
  }
  server->batcher().Resume();
  // Responses arrive in request order: 4 scores, then 6 overload errors.
  for (int i = 0; i < 10; ++i) {
    const std::string line = client.MustReadLine();
    if (i < 4) {
      EXPECT_EQ(line, ExpectedScoreLine(i % 4, i % 5)) << i;
    } else {
      EXPECT_TRUE(IsOverloadLine(line)) << i << ": " << line;
    }
  }
}

TEST_F(ServedTest, HotReloadSwitchesToTheNewCheckpoint) {
  // Stage checkpoint A at a private prefix, serve from it, then overwrite
  // with checkpoint B and RELOAD — the same request must now score under B,
  // and the response must be byte-identical to a fresh Load of B.
  const std::string prefix = ::testing::TempDir() + "/served_reload_ckpt_" +
                             std::to_string(::getpid());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix).ok());
  ServerOptions options = BaseOptions();
  options.model_prefix = prefix;
  auto server = StartServer(options);
  Client client(server->port());

  client.Send("1\t2\n");
  const std::string before = client.MustReadLine();
  EXPECT_EQ(before, ExpectedScoreLine(1, 2));

  ASSERT_TRUE(trainer_b_->Save(prefix).ok());
  client.Send("RELOAD\n1\t2\n");
  EXPECT_EQ(client.MustReadLine(), "#reloaded\tversion=1");
  const std::string after = client.MustReadLine();
  EXPECT_NE(after, before);  // Different parameters, different score.
  core::RrreTrainer loaded_b(TinyConfig());
  ASSERT_TRUE(loaded_b.Load(prefix).ok());
  core::BatchScorer scorer_b(&loaded_b);
  const auto preds = scorer_b.Score({{1, 2}});
  std::string expected =
      FormatScoreLine(1, 2, preds.ratings[0], preds.reliabilities[0]);
  expected.pop_back();
  EXPECT_EQ(after, expected);
  EXPECT_EQ(server->stats().batcher.reloads, 1);

  server->Shutdown();
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(ServedTest, ReloadUnderPipelinedLoadNeverDropsResponses) {
  // Requests pipelined around RELOADs all get exactly one response each; the
  // batcher CHECK-fails if any batch mixes parameter versions.
  const std::string prefix = ::testing::TempDir() + "/served_reload2_ckpt_" +
                             std::to_string(::getpid());
  ASSERT_TRUE(ref_trainer_a_->Save(prefix).ok());
  ServerOptions options = BaseOptions();
  options.model_prefix = prefix;
  options.batcher.max_batch = 4;
  auto server = StartServer(options);
  Client client(server->port());
  std::string wire;
  int expected_lines = 0;
  for (int i = 0; i < 30; ++i) {
    wire += std::to_string(i % 5) + "\t" + std::to_string(i % 7) + "\n";
    ++expected_lines;
    if (i % 10 == 9) {
      wire += "RELOAD\n";
      ++expected_lines;
    }
  }
  client.Send(wire);
  int scores = 0;
  int reloads = 0;
  for (int i = 0; i < expected_lines; ++i) {
    const std::string line = client.MustReadLine();
    ASSERT_FALSE(IsErrorLine(line)) << line;
    if (line.rfind("#reloaded\t", 0) == 0) {
      ++reloads;
    } else {
      ++scores;
    }
  }
  EXPECT_EQ(scores, 30);
  EXPECT_EQ(reloads, 3);
  EXPECT_EQ(server->stats().batcher.reloads, 3);
  server->Shutdown();
  for (const char* suffix :
       {".model", ".vocab", ".train.tsv", ".meta", ".optimizer"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(ServedTest, ShutdownDrainsAdmittedRequests) {
  // Admit requests into a paused batcher, then Shutdown: the drain must
  // still answer everything already admitted before closing the connection.
  ServerOptions options = BaseOptions();
  options.batcher.start_paused = true;
  auto server = StartServer(options);
  Client client(server->port());
  client.Send("0\t1\n1\t2\n2\t3\n");
  ASSERT_TRUE(WaitFor([&] { return server->stats().batcher.submitted == 3; }));
  std::thread shutdown_thread([&] { server->Shutdown(); });
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(0, 1));
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(1, 2));
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(2, 3));
  EXPECT_FALSE(client.ReadLine().has_value());  // Clean close after drain.
  shutdown_thread.join();
}

TEST_F(ServedTest, ConnectionLimitAnswersBusy) {
  ServerOptions options = BaseOptions();
  options.max_connections = 1;
  auto server = StartServer(options);
  Client first(server->port());
  first.Send("PING\n");
  EXPECT_EQ(first.MustReadLine(), "#pong");  // Guarantees `first` is accepted.
  Client second(server->port());
  const std::string line = second.MustReadLine();
  EXPECT_EQ(line.find("!ERR\tbusy\t"), 0u) << line;
  EXPECT_FALSE(second.ReadLine().has_value());
  EXPECT_EQ(server->stats().connections_rejected, 1);
}

/// Sends METRICS and returns the full exposition payload (header excluded).
std::string ScrapeMetrics(Client& client) {
  client.Send("METRICS\n");
  const std::string header = client.MustReadLine();
  EXPECT_EQ(header.find("#metrics\tlines="), 0u) << header;
  const long long lines =
      std::atoll(header.c_str() + sizeof("#metrics\tlines=") - 1);
  EXPECT_GT(lines, 0) << header;
  std::string text;
  for (long long i = 0; i < lines; ++i) text += client.MustReadLine() + "\n";
  return text;
}

TEST_F(ServedTest, MetricsScrapeIsByteIdenticalWhenIdle) {
  auto server = StartServer(BaseOptions());
  Client client(server->port());
  client.Send("0\t1\n1\t2\n2\t3\n");
  for (int i = 0; i < 3; ++i) client.MustReadLine();

  // The scrape itself moves no metric, so back-to-back scrapes over the same
  // connection with no intervening traffic must match byte for byte.
  const std::string first = ScrapeMetrics(client);
  const std::string second = ScrapeMetrics(client);
  EXPECT_EQ(first, second);

  // The exposition reflects the traffic that preceded it (score requests
  // only: the scrapes themselves are absent by design).
  EXPECT_NE(first.find("rrre_serve_requests_total 3"), std::string::npos)
      << first;
  EXPECT_NE(first.find("rrre_batcher_pairs_scored_total 3"),
            std::string::npos)
      << first;
  EXPECT_NE(first.find("rrre_batcher_queue_depth 0"), std::string::npos)
      << first;
  EXPECT_NE(first.find("rrre_serve_connections_active 1"), std::string::npos)
      << first;
  EXPECT_NE(first.find("rrre_batcher_batch_latency_us"), std::string::npos)
      << first;
  // Server-side view matches what went over the wire.
  EXPECT_EQ(server->RenderMetricsText(), first);
}

TEST_F(ServedTest, MetricsUnderConcurrentLoadStaysConsistent) {
  // Scrapes race score traffic from several connections — the TSan leg of
  // tools/check.sh runs this to prove the sharded registry is data-race
  // free. Afterwards, a quiesced scrape must add up exactly.
  auto server = StartServer(BaseOptions());
  constexpr int kClients = 3;
  constexpr int kRequests = 30;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server->port());
      for (int i = 0; i < kRequests; ++i) {
        client.Send(std::to_string((c + i) % corpus_->num_users()) + "\t" +
                    std::to_string(i % corpus_->num_items()) + "\n");
        client.MustReadLine();
      }
    });
  }
  std::thread scraper([&] {
    Client client(server->port());
    for (int i = 0; i < 10; ++i) {
      const std::string text = ScrapeMetrics(client);
      EXPECT_NE(text.find("rrre_serve_requests_total"), std::string::npos);
    }
  });
  for (auto& t : threads) t.join();
  scraper.join();
  Client client(server->port());
  const std::string text = ScrapeMetrics(client);
  EXPECT_NE(text.find("rrre_serve_requests_total " +
                      std::to_string(kClients * kRequests)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rrre_batcher_pairs_scored_total " +
                      std::to_string(kClients * kRequests)),
            std::string::npos)
      << text;
}

TEST_F(ServedTest, MetricsDisabledAnswersExplicitError) {
  ServerOptions options = BaseOptions();
  options.enable_metrics = false;
  auto server = StartServer(options);
  Client client(server->port());
  // Scoring and STATS are unaffected; METRICS reports the feature is off.
  client.Send("0\t1\nMETRICS\nSTATS\n");
  EXPECT_EQ(client.MustReadLine(), ExpectedScoreLine(0, 1));
  const std::string line = client.MustReadLine();
  EXPECT_EQ(line.find("!ERR\tmetrics\t"), 0u) << line;
  EXPECT_EQ(client.MustReadLine().find("#stats\t"), 0u);
  EXPECT_EQ(server->RenderMetricsText(), "");
}

TEST_F(ServedTest, ConcurrentClientsEachGetTheirOwnResponses) {
  // Several clients pipeline distinct request streams at once; every client
  // must read back exactly its own scores, in its own order (no misrouting
  // across connections sharing the batcher).
  auto server = StartServer(BaseOptions());
  constexpr int kClients = 4;
  constexpr int kRequests = 20;
  // Precompute wires and expected responses up front: the shared reference
  // scorer is not thread-safe, and client threads should only compare bytes.
  std::vector<std::string> wires(kClients);
  std::vector<std::vector<std::string>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kRequests; ++i) {
      const int64_t user = (c * 3 + i) % corpus_->num_users();
      const int64_t item = (c + i * 5) % corpus_->num_items();
      wires[c] += std::to_string(user) + "\t" + std::to_string(item) + "\n";
      expected[c].push_back(ExpectedScoreLine(user, item));
    }
  }
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server->port());
      client.Send(wires[c]);
      for (int i = 0; i < kRequests; ++i) {
        EXPECT_EQ(client.MustReadLine(), expected[c][i])
            << "client " << c << " request " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  server->Shutdown();
  EXPECT_EQ(server->stats().batcher.pairs_scored, kClients * kRequests);
}

}  // namespace
}  // namespace rrre::serve
