# Empty dependencies file for test_scorer.
# This may be replaced when dependencies are built.
