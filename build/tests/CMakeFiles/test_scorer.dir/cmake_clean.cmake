file(REMOVE_RECURSE
  "CMakeFiles/test_scorer.dir/test_scorer.cc.o"
  "CMakeFiles/test_scorer.dir/test_scorer.cc.o.d"
  "test_scorer"
  "test_scorer.pdb"
  "test_scorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
