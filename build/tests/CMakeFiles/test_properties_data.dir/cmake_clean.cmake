file(REMOVE_RECURSE
  "CMakeFiles/test_properties_data.dir/test_properties_data.cc.o"
  "CMakeFiles/test_properties_data.dir/test_properties_data.cc.o.d"
  "test_properties_data"
  "test_properties_data.pdb"
  "test_properties_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
