# Empty dependencies file for test_properties_data.
# This may be replaced when dependencies are built.
