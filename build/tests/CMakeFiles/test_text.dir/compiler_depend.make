# Empty compiler generated dependencies file for test_text.
# This may be replaced when dependencies are built.
