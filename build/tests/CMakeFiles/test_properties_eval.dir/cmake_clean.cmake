file(REMOVE_RECURSE
  "CMakeFiles/test_properties_eval.dir/test_properties_eval.cc.o"
  "CMakeFiles/test_properties_eval.dir/test_properties_eval.cc.o.d"
  "test_properties_eval"
  "test_properties_eval.pdb"
  "test_properties_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
