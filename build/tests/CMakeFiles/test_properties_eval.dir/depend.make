# Empty dependencies file for test_properties_eval.
# This may be replaced when dependencies are built.
