file(REMOVE_RECURSE
  "CMakeFiles/test_properties_tensor.dir/test_properties_tensor.cc.o"
  "CMakeFiles/test_properties_tensor.dir/test_properties_tensor.cc.o.d"
  "test_properties_tensor"
  "test_properties_tensor.pdb"
  "test_properties_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
