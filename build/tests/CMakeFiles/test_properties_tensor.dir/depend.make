# Empty dependencies file for test_properties_tensor.
# This may be replaced when dependencies are built.
