# Empty compiler generated dependencies file for test_properties_nn.
# This may be replaced when dependencies are built.
