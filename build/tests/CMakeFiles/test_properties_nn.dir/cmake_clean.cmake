file(REMOVE_RECURSE
  "CMakeFiles/test_properties_nn.dir/test_properties_nn.cc.o"
  "CMakeFiles/test_properties_nn.dir/test_properties_nn.cc.o.d"
  "test_properties_nn"
  "test_properties_nn.pdb"
  "test_properties_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
