# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_properties_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_properties_eval[1]_include.cmake")
include("/root/repo/build/tests/test_properties_data[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties_nn[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_scorer[1]_include.cmake")
