file(REMOVE_RECURSE
  "librrre_graph.a"
)
