file(REMOVE_RECURSE
  "CMakeFiles/rrre_graph.dir/mrf.cc.o"
  "CMakeFiles/rrre_graph.dir/mrf.cc.o.d"
  "librrre_graph.a"
  "librrre_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
