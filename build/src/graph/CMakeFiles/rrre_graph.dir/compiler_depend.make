# Empty compiler generated dependencies file for rrre_graph.
# This may be replaced when dependencies are built.
