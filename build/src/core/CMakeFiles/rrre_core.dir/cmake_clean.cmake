file(REMOVE_RECURSE
  "CMakeFiles/rrre_core.dir/features.cc.o"
  "CMakeFiles/rrre_core.dir/features.cc.o.d"
  "CMakeFiles/rrre_core.dir/model.cc.o"
  "CMakeFiles/rrre_core.dir/model.cc.o.d"
  "CMakeFiles/rrre_core.dir/recommender.cc.o"
  "CMakeFiles/rrre_core.dir/recommender.cc.o.d"
  "CMakeFiles/rrre_core.dir/review_encoder.cc.o"
  "CMakeFiles/rrre_core.dir/review_encoder.cc.o.d"
  "CMakeFiles/rrre_core.dir/scorer.cc.o"
  "CMakeFiles/rrre_core.dir/scorer.cc.o.d"
  "CMakeFiles/rrre_core.dir/semi_supervised.cc.o"
  "CMakeFiles/rrre_core.dir/semi_supervised.cc.o.d"
  "CMakeFiles/rrre_core.dir/trainer.cc.o"
  "CMakeFiles/rrre_core.dir/trainer.cc.o.d"
  "librrre_core.a"
  "librrre_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
