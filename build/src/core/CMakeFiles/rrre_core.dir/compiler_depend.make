# Empty compiler generated dependencies file for rrre_core.
# This may be replaced when dependencies are built.
