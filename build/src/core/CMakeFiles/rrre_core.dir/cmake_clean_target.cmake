file(REMOVE_RECURSE
  "librrre_core.a"
)
