
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/rrre_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/features.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/rrre_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/model.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/rrre_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/recommender.cc.o.d"
  "/root/repo/src/core/review_encoder.cc" "src/core/CMakeFiles/rrre_core.dir/review_encoder.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/review_encoder.cc.o.d"
  "/root/repo/src/core/scorer.cc" "src/core/CMakeFiles/rrre_core.dir/scorer.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/scorer.cc.o.d"
  "/root/repo/src/core/semi_supervised.cc" "src/core/CMakeFiles/rrre_core.dir/semi_supervised.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/semi_supervised.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/rrre_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/rrre_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/rrre_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rrre_text.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rrre_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rrre_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
