
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/behavior_features.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/behavior_features.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/behavior_features.cc.o.d"
  "/root/repo/src/baselines/deepconn.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/deepconn.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/deepconn.cc.o.d"
  "/root/repo/src/baselines/der.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/der.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/der.cc.o.d"
  "/root/repo/src/baselines/icwsm13.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/icwsm13.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/icwsm13.cc.o.d"
  "/root/repo/src/baselines/logreg.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/logreg.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/logreg.cc.o.d"
  "/root/repo/src/baselines/narre.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/narre.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/narre.cc.o.d"
  "/root/repo/src/baselines/neural_base.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/neural_base.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/neural_base.cc.o.d"
  "/root/repo/src/baselines/pmf.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/pmf.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/pmf.cc.o.d"
  "/root/repo/src/baselines/rev2.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/rev2.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/rev2.cc.o.d"
  "/root/repo/src/baselines/rrre_adapter.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/rrre_adapter.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/rrre_adapter.cc.o.d"
  "/root/repo/src/baselines/speagle.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/speagle.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/speagle.cc.o.d"
  "/root/repo/src/baselines/textcnn.cc" "src/baselines/CMakeFiles/rrre_baselines.dir/textcnn.cc.o" "gcc" "src/baselines/CMakeFiles/rrre_baselines.dir/textcnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rrre_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rrre_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rrre_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rrre_text.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rrre_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rrre_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
