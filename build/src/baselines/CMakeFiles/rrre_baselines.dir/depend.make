# Empty dependencies file for rrre_baselines.
# This may be replaced when dependencies are built.
