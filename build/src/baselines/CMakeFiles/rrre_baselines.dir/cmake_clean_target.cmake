file(REMOVE_RECURSE
  "librrre_baselines.a"
)
