file(REMOVE_RECURSE
  "CMakeFiles/rrre_baselines.dir/behavior_features.cc.o"
  "CMakeFiles/rrre_baselines.dir/behavior_features.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/deepconn.cc.o"
  "CMakeFiles/rrre_baselines.dir/deepconn.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/der.cc.o"
  "CMakeFiles/rrre_baselines.dir/der.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/icwsm13.cc.o"
  "CMakeFiles/rrre_baselines.dir/icwsm13.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/logreg.cc.o"
  "CMakeFiles/rrre_baselines.dir/logreg.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/narre.cc.o"
  "CMakeFiles/rrre_baselines.dir/narre.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/neural_base.cc.o"
  "CMakeFiles/rrre_baselines.dir/neural_base.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/pmf.cc.o"
  "CMakeFiles/rrre_baselines.dir/pmf.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/rev2.cc.o"
  "CMakeFiles/rrre_baselines.dir/rev2.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/rrre_adapter.cc.o"
  "CMakeFiles/rrre_baselines.dir/rrre_adapter.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/speagle.cc.o"
  "CMakeFiles/rrre_baselines.dir/speagle.cc.o.d"
  "CMakeFiles/rrre_baselines.dir/textcnn.cc.o"
  "CMakeFiles/rrre_baselines.dir/textcnn.cc.o.d"
  "librrre_baselines.a"
  "librrre_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
