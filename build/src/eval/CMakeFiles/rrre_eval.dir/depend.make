# Empty dependencies file for rrre_eval.
# This may be replaced when dependencies are built.
