file(REMOVE_RECURSE
  "CMakeFiles/rrre_eval.dir/metrics.cc.o"
  "CMakeFiles/rrre_eval.dir/metrics.cc.o.d"
  "librrre_eval.a"
  "librrre_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
