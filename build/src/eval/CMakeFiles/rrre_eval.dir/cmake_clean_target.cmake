file(REMOVE_RECURSE
  "librrre_eval.a"
)
