# Empty dependencies file for rrre_data.
# This may be replaced when dependencies are built.
