file(REMOVE_RECURSE
  "librrre_data.a"
)
