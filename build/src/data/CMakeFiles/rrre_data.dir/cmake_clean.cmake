file(REMOVE_RECURSE
  "CMakeFiles/rrre_data.dir/dataset.cc.o"
  "CMakeFiles/rrre_data.dir/dataset.cc.o.d"
  "CMakeFiles/rrre_data.dir/profiles.cc.o"
  "CMakeFiles/rrre_data.dir/profiles.cc.o.d"
  "CMakeFiles/rrre_data.dir/sampling.cc.o"
  "CMakeFiles/rrre_data.dir/sampling.cc.o.d"
  "CMakeFiles/rrre_data.dir/synthetic.cc.o"
  "CMakeFiles/rrre_data.dir/synthetic.cc.o.d"
  "CMakeFiles/rrre_data.dir/wordbanks.cc.o"
  "CMakeFiles/rrre_data.dir/wordbanks.cc.o.d"
  "librrre_data.a"
  "librrre_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
