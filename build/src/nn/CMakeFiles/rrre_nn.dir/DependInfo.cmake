
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/rrre_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/rrre_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/rrre_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/fm.cc" "src/nn/CMakeFiles/rrre_nn.dir/fm.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/fm.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/rrre_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/rrre_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/rrre_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/rrre_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/rrre_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/rrre_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/rrre_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rrre_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrre_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
