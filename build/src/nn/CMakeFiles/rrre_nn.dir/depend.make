# Empty dependencies file for rrre_nn.
# This may be replaced when dependencies are built.
