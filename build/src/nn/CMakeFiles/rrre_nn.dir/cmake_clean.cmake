file(REMOVE_RECURSE
  "CMakeFiles/rrre_nn.dir/attention.cc.o"
  "CMakeFiles/rrre_nn.dir/attention.cc.o.d"
  "CMakeFiles/rrre_nn.dir/dropout.cc.o"
  "CMakeFiles/rrre_nn.dir/dropout.cc.o.d"
  "CMakeFiles/rrre_nn.dir/embedding.cc.o"
  "CMakeFiles/rrre_nn.dir/embedding.cc.o.d"
  "CMakeFiles/rrre_nn.dir/fm.cc.o"
  "CMakeFiles/rrre_nn.dir/fm.cc.o.d"
  "CMakeFiles/rrre_nn.dir/gru.cc.o"
  "CMakeFiles/rrre_nn.dir/gru.cc.o.d"
  "CMakeFiles/rrre_nn.dir/linear.cc.o"
  "CMakeFiles/rrre_nn.dir/linear.cc.o.d"
  "CMakeFiles/rrre_nn.dir/loss.cc.o"
  "CMakeFiles/rrre_nn.dir/loss.cc.o.d"
  "CMakeFiles/rrre_nn.dir/lstm.cc.o"
  "CMakeFiles/rrre_nn.dir/lstm.cc.o.d"
  "CMakeFiles/rrre_nn.dir/module.cc.o"
  "CMakeFiles/rrre_nn.dir/module.cc.o.d"
  "CMakeFiles/rrre_nn.dir/optimizer.cc.o"
  "CMakeFiles/rrre_nn.dir/optimizer.cc.o.d"
  "librrre_nn.a"
  "librrre_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
