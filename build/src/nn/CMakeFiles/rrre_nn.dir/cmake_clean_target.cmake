file(REMOVE_RECURSE
  "librrre_nn.a"
)
