file(REMOVE_RECURSE
  "librrre_text.a"
)
