# Empty compiler generated dependencies file for rrre_text.
# This may be replaced when dependencies are built.
