file(REMOVE_RECURSE
  "CMakeFiles/rrre_text.dir/tokenizer.cc.o"
  "CMakeFiles/rrre_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/rrre_text.dir/vocab.cc.o"
  "CMakeFiles/rrre_text.dir/vocab.cc.o.d"
  "CMakeFiles/rrre_text.dir/word2vec.cc.o"
  "CMakeFiles/rrre_text.dir/word2vec.cc.o.d"
  "librrre_text.a"
  "librrre_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
