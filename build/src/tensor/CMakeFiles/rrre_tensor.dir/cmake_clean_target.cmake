file(REMOVE_RECURSE
  "librrre_tensor.a"
)
