file(REMOVE_RECURSE
  "CMakeFiles/rrre_tensor.dir/ops.cc.o"
  "CMakeFiles/rrre_tensor.dir/ops.cc.o.d"
  "CMakeFiles/rrre_tensor.dir/serialize.cc.o"
  "CMakeFiles/rrre_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/rrre_tensor.dir/shape.cc.o"
  "CMakeFiles/rrre_tensor.dir/shape.cc.o.d"
  "CMakeFiles/rrre_tensor.dir/tensor.cc.o"
  "CMakeFiles/rrre_tensor.dir/tensor.cc.o.d"
  "librrre_tensor.a"
  "librrre_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
