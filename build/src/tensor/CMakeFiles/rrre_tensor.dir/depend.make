# Empty dependencies file for rrre_tensor.
# This may be replaced when dependencies are built.
