file(REMOVE_RECURSE
  "CMakeFiles/rrre_common.dir/flags.cc.o"
  "CMakeFiles/rrre_common.dir/flags.cc.o.d"
  "CMakeFiles/rrre_common.dir/io.cc.o"
  "CMakeFiles/rrre_common.dir/io.cc.o.d"
  "CMakeFiles/rrre_common.dir/logging.cc.o"
  "CMakeFiles/rrre_common.dir/logging.cc.o.d"
  "CMakeFiles/rrre_common.dir/rng.cc.o"
  "CMakeFiles/rrre_common.dir/rng.cc.o.d"
  "CMakeFiles/rrre_common.dir/status.cc.o"
  "CMakeFiles/rrre_common.dir/status.cc.o.d"
  "CMakeFiles/rrre_common.dir/strings.cc.o"
  "CMakeFiles/rrre_common.dir/strings.cc.o.d"
  "librrre_common.a"
  "librrre_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
