# Empty compiler generated dependencies file for rrre_common.
# This may be replaced when dependencies are built.
