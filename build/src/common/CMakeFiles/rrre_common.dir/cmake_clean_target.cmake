file(REMOVE_RECURSE
  "librrre_common.a"
)
