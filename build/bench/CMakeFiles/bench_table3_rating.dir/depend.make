# Empty dependencies file for bench_table3_rating.
# This may be replaced when dependencies are built.
