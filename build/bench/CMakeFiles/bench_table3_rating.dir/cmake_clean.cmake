file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rating.dir/bench_table3_rating.cc.o"
  "CMakeFiles/bench_table3_rating.dir/bench_table3_rating.cc.o.d"
  "bench_table3_rating"
  "bench_table3_rating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
