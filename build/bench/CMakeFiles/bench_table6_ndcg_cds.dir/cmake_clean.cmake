file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ndcg_cds.dir/bench_table6_ndcg_cds.cc.o"
  "CMakeFiles/bench_table6_ndcg_cds.dir/bench_table6_ndcg_cds.cc.o.d"
  "bench_table6_ndcg_cds"
  "bench_table6_ndcg_cds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ndcg_cds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
