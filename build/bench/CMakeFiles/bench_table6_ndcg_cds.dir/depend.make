# Empty dependencies file for bench_table6_ndcg_cds.
# This may be replaced when dependencies are built.
