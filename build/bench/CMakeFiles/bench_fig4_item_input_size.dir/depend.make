# Empty dependencies file for bench_fig4_item_input_size.
# This may be replaced when dependencies are built.
