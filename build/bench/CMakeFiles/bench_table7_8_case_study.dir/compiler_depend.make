# Empty compiler generated dependencies file for bench_table7_8_case_study.
# This may be replaced when dependencies are built.
