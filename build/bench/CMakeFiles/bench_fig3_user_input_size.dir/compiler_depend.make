# Empty compiler generated dependencies file for bench_fig3_user_input_size.
# This may be replaced when dependencies are built.
