file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_user_input_size.dir/bench_fig3_user_input_size.cc.o"
  "CMakeFiles/bench_fig3_user_input_size.dir/bench_fig3_user_input_size.cc.o.d"
  "bench_fig3_user_input_size"
  "bench_fig3_user_input_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_user_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
