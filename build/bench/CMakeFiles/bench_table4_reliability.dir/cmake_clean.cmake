file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_reliability.dir/bench_table4_reliability.cc.o"
  "CMakeFiles/bench_table4_reliability.dir/bench_table4_reliability.cc.o.d"
  "bench_table4_reliability"
  "bench_table4_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
