file(REMOVE_RECURSE
  "CMakeFiles/rrre_bench_harness.dir/harness.cc.o"
  "CMakeFiles/rrre_bench_harness.dir/harness.cc.o.d"
  "CMakeFiles/rrre_bench_harness.dir/ndcg_table.cc.o"
  "CMakeFiles/rrre_bench_harness.dir/ndcg_table.cc.o.d"
  "librrre_bench_harness.a"
  "librrre_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
