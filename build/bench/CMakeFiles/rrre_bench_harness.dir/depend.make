# Empty dependencies file for rrre_bench_harness.
# This may be replaced when dependencies are built.
