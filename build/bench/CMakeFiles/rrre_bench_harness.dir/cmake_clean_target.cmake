file(REMOVE_RECURSE
  "librrre_bench_harness.a"
)
