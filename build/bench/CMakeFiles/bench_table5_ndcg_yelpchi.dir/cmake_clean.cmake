file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ndcg_yelpchi.dir/bench_table5_ndcg_yelpchi.cc.o"
  "CMakeFiles/bench_table5_ndcg_yelpchi.dir/bench_table5_ndcg_yelpchi.cc.o.d"
  "bench_table5_ndcg_yelpchi"
  "bench_table5_ndcg_yelpchi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ndcg_yelpchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
