# Empty dependencies file for bench_table5_ndcg_yelpchi.
# This may be replaced when dependencies are built.
