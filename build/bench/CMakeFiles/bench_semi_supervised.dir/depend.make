# Empty dependencies file for bench_semi_supervised.
# This may be replaced when dependencies are built.
