file(REMOVE_RECURSE
  "CMakeFiles/bench_semi_supervised.dir/bench_semi_supervised.cc.o"
  "CMakeFiles/bench_semi_supervised.dir/bench_semi_supervised.cc.o.d"
  "bench_semi_supervised"
  "bench_semi_supervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semi_supervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
