# Empty dependencies file for reliable_recommendation.
# This may be replaced when dependencies are built.
