file(REMOVE_RECURSE
  "CMakeFiles/reliable_recommendation.dir/reliable_recommendation.cpp.o"
  "CMakeFiles/reliable_recommendation.dir/reliable_recommendation.cpp.o.d"
  "reliable_recommendation"
  "reliable_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
