# Empty dependencies file for fraud_audit.
# This may be replaced when dependencies are built.
