file(REMOVE_RECURSE
  "CMakeFiles/fraud_audit.dir/fraud_audit.cpp.o"
  "CMakeFiles/fraud_audit.dir/fraud_audit.cpp.o.d"
  "fraud_audit"
  "fraud_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
