file(REMOVE_RECURSE
  "CMakeFiles/rrre_cli.dir/rrre_cli.cpp.o"
  "CMakeFiles/rrre_cli.dir/rrre_cli.cpp.o.d"
  "rrre_cli"
  "rrre_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrre_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
