# Empty dependencies file for rrre_cli.
# This may be replaced when dependencies are built.
