file(REMOVE_RECURSE
  "CMakeFiles/dataset_gen.dir/dataset_gen.cpp.o"
  "CMakeFiles/dataset_gen.dir/dataset_gen.cpp.o.d"
  "dataset_gen"
  "dataset_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
