# Empty compiler generated dependencies file for dataset_gen.
# This may be replaced when dependencies are built.
